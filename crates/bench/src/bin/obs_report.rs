//! Telemetry-overhead report distilled into `BENCH_obs.json`: wall
//! time of a ≥200-query corpus under the four `Obs` configurations
//! (absent, attached-but-disabled, metrics-only, metrics+tracing),
//! plus the relative overhead of each against the no-`Obs` baseline.
//! The same comparison runs under Criterion in `benches/obs_overhead.rs`;
//! this bin trades statistical rigor for one machine-readable artifact.
//!
//! Passes are interleaved round-robin across the configurations and
//! the per-config minimum is kept, so slow machine drift cancels out
//! of the overhead ratios.
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin obs_report -- \
//!     [--scale F] [--seed N] [--reps N] [--out BENCH_obs.json]
//! ```

use gpssn_core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn_obs::{Obs, ObsConfig};
use gpssn_ssn::{DatasetKind, SpatialSocialNetwork};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// One timed wall-clock pass of `f`, in seconds.
fn timed_pass<T>(mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64()
}

/// The ≥200-query corpus: the refinement suite's parameter grid over
/// four seeds (3 group sizes x 3 gammas x 2 thetas x 3 radii x 4).
fn corpus(ssn: &SpatialSocialNetwork) -> Vec<GpSsnQuery> {
    let m = ssn.social().num_users() as u32;
    let mut qs = Vec::new();
    for seed in 0..4u32 {
        for (qi, &tau) in [1usize, 2, 3].iter().enumerate() {
            for (gi, &gamma) in [0.2, 0.5, 0.8].iter().enumerate() {
                for &theta in &[0.2, 0.6] {
                    for &radius in &[1.0, 2.0, 3.0] {
                        let user = (seed + qi as u32 * 7 + gi as u32 * 3) % m;
                        qs.push(GpSsnQuery {
                            user,
                            tau,
                            gamma,
                            theta,
                            radius,
                        });
                    }
                }
            }
        }
    }
    qs
}

fn run(eng: &GpSsnEngine, queries: &[GpSsnQuery]) {
    for q in queries {
        std::hint::black_box(eng.query(q));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut reps = 9usize;
    let mut out = String::from("BENCH_obs.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--help" | "-h" => {
                eprintln!("usage: obs_report [--scale F] [--seed N] [--reps N] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let ssn = DatasetKind::Uni.build(scale, seed);
    let queries = corpus(&ssn);
    eprintln!(
        "dataset Uni scale {scale}: {} users, {} POIs; corpus {} queries",
        ssn.social().num_users(),
        ssn.pois().len(),
        queries.len()
    );

    let configs: [(&str, Option<Arc<Obs>>); 4] = [
        ("none", None),
        ("disabled", Some(Arc::new(Obs::disabled()))),
        ("metrics", Some(Arc::new(Obs::with_metrics()))),
        (
            "full",
            Some(Arc::new(Obs::new(ObsConfig {
                metrics: true,
                tracing: true,
                trace_capacity: 1 << 16,
            }))),
        ),
    ];
    let engines: Vec<(&str, GpSsnEngine<'_>)> = configs
        .into_iter()
        .map(|(name, obs)| {
            let eng = GpSsnEngine::build(
                &ssn,
                EngineConfig {
                    obs,
                    ..Default::default()
                },
            );
            run(&eng, &queries); // warm the cross-query cache
            (name, eng)
        })
        .collect();
    // Interleave passes round-robin across configurations so slow
    // machine drift (thermal, co-tenant noise) hits every config
    // equally, and keep the per-config minimum — the least-perturbed
    // pass, the standard noise-robust estimator for overhead ratios.
    let mut best = vec![f64::INFINITY; engines.len()];
    for _ in 0..reps {
        for (i, (_, eng)) in engines.iter().enumerate() {
            best[i] = best[i].min(timed_pass(|| run(eng, &queries)));
        }
    }
    let mut secs = Vec::new();
    for ((name, _), t) in engines.iter().zip(best) {
        eprintln!("{name:>9}: {t:.4}s");
        secs.push((*name, t));
    }
    let base = secs[0].1;
    let mut fields = String::new();
    for (name, t) in &secs {
        fields.push_str(&format!(
            "  \"{name}\": {{\"secs\": {t:.6}, \"overhead_pct\": {:.3}}},\n",
            (t / base - 1.0) * 100.0
        ));
    }
    let json = format!(
        "{{\n  \"dataset\": {{\"kind\": \"Uni\", \"scale\": {scale}, \"seed\": {seed}, \
         \"queries\": {}}},\n{fields}  \"budget\": {{\"disabled_overhead_limit_pct\": 1.0}}\n}}\n",
        queries.len()
    );
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write report");
    eprintln!("wrote {out}");
}
