//! Telemetry-overhead report distilled into `BENCH_obs.json`: wall
//! time of a ≥200-query corpus under the four `Obs` configurations
//! (absent, attached-but-disabled, metrics-only, metrics+tracing),
//! plus the relative overhead of each against the no-`Obs` baseline.
//! The same comparison runs under Criterion in `benches/obs_overhead.rs`;
//! this bin trades statistical rigor for one machine-readable artifact.
//!
//! A fifth configuration, `flight_tail`, measures the always-on
//! continuous serve layer: the disabled-`Obs` engine plus exactly the
//! per-request work a serve worker adds — one clock read, a rolling SLO
//! window record, a tail-sampling decision, and a flight-recorder ring
//! push. Its `vs_disabled_pct` is the cost of the always-on recorder
//! over the PR-4 disabled baseline, and `GPSSN_OBS_ASSERT=1` turns the
//! 1% budget on both `disabled` and `flight_tail` into hard assertions.
//!
//! Passes are interleaved round-robin across the configurations and
//! the per-config minimum is kept, so slow machine drift cancels out
//! of the overhead ratios.
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin obs_report -- \
//!     [--scale F] [--seed N] [--reps N] [--out BENCH_obs.json]
//! ```

use gpssn_core::{EngineConfig, GpSsnEngine, GpSsnQuery, QueryOutcome};
use gpssn_obs::{
    FlightConfig, FlightCounters, FlightRecord, FlightRecorder, Obs, ObsConfig, ServeClass,
    SloConfig, SloMonitor, TailConfig, TailSampler, WindowConfig,
};
use gpssn_ssn::{DatasetKind, SpatialSocialNetwork};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// A named timed pass over the corpus.
type Pass<'a> = (&'a str, Box<dyn Fn() + 'a>);

/// One timed wall-clock pass of `f`, in seconds.
fn timed_pass<T>(mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64()
}

/// The ≥200-query corpus: the refinement suite's parameter grid over
/// four seeds (3 group sizes x 3 gammas x 2 thetas x 3 radii x 4).
fn corpus(ssn: &SpatialSocialNetwork) -> Vec<GpSsnQuery> {
    let m = ssn.social().num_users() as u32;
    let mut qs = Vec::new();
    for seed in 0..4u32 {
        for (qi, &tau) in [1usize, 2, 3].iter().enumerate() {
            for (gi, &gamma) in [0.2, 0.5, 0.8].iter().enumerate() {
                for &theta in &[0.2, 0.6] {
                    for &radius in &[1.0, 2.0, 3.0] {
                        let user = (seed + qi as u32 * 7 + gi as u32 * 3) % m;
                        qs.push(GpSsnQuery {
                            user,
                            tau,
                            gamma,
                            theta,
                            radius,
                        });
                    }
                }
            }
        }
    }
    qs
}

fn run(eng: &GpSsnEngine, queries: &[GpSsnQuery]) {
    for q in queries {
        std::hint::black_box(eng.query(q));
    }
}

/// The always-on continuous layer a serve worker threads around each
/// request, shared by the `flight_tail` configuration's passes.
struct Continuous {
    flight: FlightRecorder,
    tail: TailSampler,
    slo: SloMonitor,
}

impl Continuous {
    fn new() -> Self {
        Continuous {
            flight: FlightRecorder::new(&FlightConfig::default()),
            tail: TailSampler::new(&TailConfig::default()),
            slo: SloMonitor::new(&WindowConfig::default(), SloConfig::default()),
        }
    }

    /// Exactly the per-request bookkeeping `serve`'s `record_completion`
    /// does for a successful query: clock read, SLO record, tail
    /// decision, flight push.
    fn record(&self, seq: u64, out: &QueryOutcome) {
        let m = &out.metrics;
        let latency_ns = m.cpu.as_nanos().min(u64::MAX as u128) as u64;
        let now_ns = self.slo.now_ns();
        self.slo.record(now_ns, latency_ns, 0, ServeClass::Ok);
        let decision = self.tail.decide(latency_ns, false);
        let s = &m.stats;
        self.flight.record(FlightRecord {
            id: 0, // reassigned by the recorder
            seq,
            class: "ok",
            completion: "exact",
            code: "",
            backend: "",
            end_ns: now_ns,
            total_ns: latency_ns,
            queue_wait_ns: 0,
            io_pages: m.io_pages,
            heap_pops: m.heap_pops,
            settles: m.total_settles(),
            cache_hits: m.cache.ball_hits + m.cache.dist_hits,
            cache_misses: m.cache.ball_misses + m.cache.dist_misses,
            counters: FlightCounters {
                users_total: s.users_total as u64,
                users_pruned_index: s.users_pruned_index as u64,
                users_pruned_object: s.users_pruned_object as u64,
                pois_total: s.pois_total as u64,
                pois_pruned_index: s.pois_pruned_index as u64,
                pois_pruned_object: s.pois_pruned_object as u64,
                candidate_users: s.candidate_users as u64,
                candidate_pois: s.candidate_pois as u64,
                pairs_refined: s.pairs_refined,
            },
            phases: Vec::new(),
            trace_committed: decision.keep(),
        });
    }
}

fn run_recorded(eng: &GpSsnEngine, queries: &[GpSsnQuery], cont: &Continuous) {
    for (i, q) in queries.iter().enumerate() {
        let out = std::hint::black_box(eng.query(q));
        cont.record(i as u64, &out);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut reps = 9usize;
    let mut out = String::from("BENCH_obs.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--help" | "-h" => {
                eprintln!("usage: obs_report [--scale F] [--seed N] [--reps N] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let ssn = DatasetKind::Uni.build(scale, seed);
    let queries = corpus(&ssn);
    eprintln!(
        "dataset Uni scale {scale}: {} users, {} POIs; corpus {} queries",
        ssn.social().num_users(),
        ssn.pois().len(),
        queries.len()
    );

    let configs: [(&str, Option<Arc<Obs>>); 4] = [
        ("none", None),
        ("disabled", Some(Arc::new(Obs::disabled()))),
        ("metrics", Some(Arc::new(Obs::with_metrics()))),
        (
            "full",
            Some(Arc::new(Obs::new(ObsConfig {
                metrics: true,
                tracing: true,
                trace_capacity: 1 << 16,
            }))),
        ),
    ];
    let engines: Vec<(&str, GpSsnEngine<'_>)> = configs
        .into_iter()
        .map(|(name, obs)| {
            let eng = GpSsnEngine::build(
                &ssn,
                EngineConfig {
                    obs,
                    ..Default::default()
                },
            );
            run(&eng, &queries); // warm the cross-query cache
            (name, eng)
        })
        .collect();
    // The continuous-layer configuration rides on the disabled engine
    // (PR-4's attached-but-off baseline) plus the serve worker's
    // per-request recording.
    let cont = Continuous::new();
    let disabled_eng = &engines[1].1;
    let queries = &queries;
    let passes: Vec<Pass<'_>> = engines
        .iter()
        .map(|(name, eng)| {
            let f: Box<dyn Fn() + '_> = Box::new(move || run(eng, queries));
            (*name, f)
        })
        .chain(std::iter::once((
            "flight_tail",
            Box::new(|| run_recorded(disabled_eng, queries, &cont)) as Box<dyn Fn() + '_>,
        )))
        .collect();
    // Interleave passes round-robin across configurations so slow
    // machine drift (thermal, co-tenant noise) hits every config
    // equally, and keep the per-config minimum — the least-perturbed
    // pass, the standard noise-robust estimator for overhead ratios.
    let mut best = vec![f64::INFINITY; passes.len()];
    for _ in 0..reps {
        for (i, (_, pass)) in passes.iter().enumerate() {
            best[i] = best[i].min(timed_pass(pass));
        }
    }
    let mut secs = Vec::new();
    for ((name, _), t) in passes.iter().zip(best) {
        eprintln!("{name:>11}: {t:.4}s");
        secs.push((*name, t));
    }
    let base = secs[0].1;
    let disabled = secs[1].1;
    let mut fields = String::new();
    for (name, t) in &secs {
        fields.push_str(&format!(
            "  \"{name}\": {{\"secs\": {t:.6}, \"overhead_pct\": {:.3}}},\n",
            (t / base - 1.0) * 100.0
        ));
    }
    // The recorder's own cost: always-on continuous layer over the
    // disabled baseline it wraps.
    let flight_tail = secs
        .iter()
        .find(|(n, _)| *n == "flight_tail")
        .map(|(_, t)| *t)
        .unwrap_or(disabled);
    let recorder_pct = (flight_tail / disabled - 1.0) * 100.0;
    let json = format!(
        "{{\n  \"dataset\": {{\"kind\": \"Uni\", \"scale\": {scale}, \"seed\": {seed}, \
         \"queries\": {}}},\n{fields}  \"flight_tail_vs_disabled_pct\": {recorder_pct:.3},\n  \
         \"budget\": {{\"disabled_overhead_limit_pct\": 1.0, \
         \"flight_tail_vs_disabled_limit_pct\": 1.0}}\n}}\n",
        queries.len()
    );
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write report");
    eprintln!("wrote {out}");
    if std::env::var_os("GPSSN_OBS_ASSERT").is_some() {
        let disabled_pct = (disabled / base - 1.0) * 100.0;
        assert!(
            disabled_pct < 1.0,
            "disabled Obs overhead {disabled_pct:.3}% breaches the 1% budget"
        );
        assert!(
            recorder_pct < 1.0,
            "flight recorder + tail sampler overhead {recorder_pct:.3}% over the \
             disabled baseline breaches the 1% budget"
        );
        eprintln!(
            "asserted: disabled {disabled_pct:.3}% < 1%, flight_tail vs disabled \
             {recorder_pct:.3}% < 1%"
        );
    }
}
