//! GP-SSN query CLI: loads a `.ssn` dataset (see `datagen`), builds the
//! indexes, and answers queries from the command line.
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin gpq -- \
//!     --data city.ssn --user 11 --tau 4 --gamma 0.3 --theta 0.4 --r 2 \
//!     [--top-k 3] [--approx 64] [--tune 0.7] \
//!     [--timeout-ms N] [--max-pops N] [--max-groups N] [--max-settles N] \
//!     [--trace-out FILE] [--metrics-out FILE] [--log jsonl]
//! ```
//!
//! Telemetry flags:
//!
//! * `--trace-out FILE` — write a Chrome `trace_event` JSON of the
//!   query's phase spans (load in `chrome://tracing` or Perfetto).
//! * `--metrics-out FILE` — write a Prometheus text-format exposition
//!   of the run's counters and phase-duration histograms.
//! * `--log jsonl` — print one structured JSON log line per query to
//!   stdout (parameters, completion class, phase durations, cache
//!   hit rate).
//!
//! Every error prints a single line on stderr and maps to a stable exit
//! code so scripts can dispatch on the failure class:
//!
//! | code | class                          |
//! |------|--------------------------------|
//! | 2    | usage / invalid query          |
//! | 3    | unknown user                   |
//! | 4    | radius outside index range     |
//! | 5    | infeasible query               |
//! | 6    | deadline exceeded              |
//! | 7    | resource budget exhausted      |
//! | 8    | answer degraded (sampling)     |
//! | 9    | deadline expired before start  |
//! | 65   | persisted index corrupt        |
//! | 66   | dataset unreadable             |
//! | 69   | service overloaded (shed)      |
//! | 70   | internal error                 |
//!
//! A *tripped budget with an answer in hand* is not an error: the answer
//! is printed with its optimality-gap bound and the exit code is 0. An
//! answer rescued by the sampling rung of the degradation ladder *is*
//! flagged (exit 8 plus a stderr line): it is feasible but carries no
//! optimality bound, and scripts must be able to tell.
//!
//! Chaos testing: when built with `--features failpoints`, `--chaos-seed N`
//! installs a deterministic fault plan (every registered fail-point site
//! fires pseudo-randomly, seeded by `N`) and enables the degradation
//! ladder, so injected faults downgrade answers instead of failing them.
//!
//! ## Serving mode
//!
//! `gpq serve --data FILE [--queries FILE]` builds the indexes once and
//! answers a stream of JSONL requests — from `--queries FILE` or stdin —
//! writing one JSONL response line per request to stdout, in request
//! order, flushed as each completes. File and stdin mode share one
//! incremental line reader: input is never slurped, and a malformed line
//! yields an in-order `"status":"error"` record instead of aborting the
//! stream. Request lines look like:
//!
//! ```json
//! {"id":7,"user":11,"tau":4,"gamma":0.3,"theta":0.4,"r":2.0,"timeout_ms":250}
//! ```
//!
//! In both modes `--build-threads N` sizes the index-build worker pool
//! (`0` = all cores, the default); the built indexes are bit-identical
//! for every value, so the knob trades build wall clock only.
//!
//! Only `user` is required. `--threads N` sizes the worker pool,
//! `--queue-cap N` bounds the submission queue, and `--shed` rejects on a
//! full queue (`"code":"overloaded"`) instead of applying backpressure.
//! Budget flags set the default budget for requests that carry none.
//! Exit is 0 once the stream drains, regardless of per-request failures;
//! 74 signals an I/O error on the stream itself.
//!
//! Serving-mode observability:
//!
//! * `--telemetry-addr ADDR` — bind a live HTTP endpoint for the
//!   duration of the stream: `GET /metrics` (Prometheus), `/health`,
//!   `/slo`, and `/flight` (see `gpssn_core::telemetry`).
//! * `--metrics-out FILE`, `--slo-out FILE`, `--trace-out FILE` — dump
//!   the final metric snapshot, rolling SLO window, and tail-sampled
//!   Chrome trace when the stream ends. The dumps are written on *every*
//!   exit path — clean EOF and stream I/O error (exit 74) alike.
//! * `--slow-ms N` / `--head-rate N` — tail-sampling policy: traces of
//!   errored/shed/degraded queries are always kept, queries at least
//!   `N` ms slow are kept (`0` disables), and 1-in-`head-rate` of the
//!   boring rest survive (`0` keeps none).
//! * `--flight-cap N` — flight-recorder ring size (default 256).
//!
//! A request line `{"control":"metrics"|"slo"|"flight"}` returns the
//! same telemetry inline on stdout instead of running a query.

use gpssn_core::{
    serve_jsonl, suggest_parameters, Completion, DegradationPolicy, EngineConfig, GpSsnEngine,
    GpSsnError, GpSsnQuery, OverloadPolicy, QueryBudget, QueryOptions, QueryOutcome, ServeConfig,
    ServeObs, ServeObsConfig,
};
use gpssn_obs::{FlightConfig, Obs, ObsConfig, Registry, TailConfig};
use gpssn_ssn::{load_ssn, DatasetStats, SpatialSocialNetwork};
use std::io::BufRead;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: gpq --data FILE [--user N] [--tau N] [--gamma F] [--theta F] \
     [--r F] [--top-k N] [--approx SAMPLES] [--tune PCTL] [--build-threads N] \
     [--timeout-ms N] [--max-pops N] [--max-groups N] [--max-settles N] \
     [--trace-out FILE] [--metrics-out FILE] [--log jsonl] [--chaos-seed N]\n\
       gpq serve --data FILE [--queries FILE] [--threads N] [--queue-cap N] [--shed] \
     [--build-threads N] [--timeout-ms N] [--max-pops N] [--max-groups N] [--max-settles N] \
     [--telemetry-addr ADDR] [--metrics-out FILE] [--slo-out FILE] [--trace-out FILE] \
     [--slow-ms N] [--head-rate N] [--flight-cap N] [--chaos-seed N]";

fn die_usage(msg: &str) -> ! {
    eprintln!("gpq: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn exit_code(e: &GpSsnError) -> i32 {
    match e {
        GpSsnError::InvalidQuery(_) => 2,
        GpSsnError::UnknownUser { .. } => 3,
        GpSsnError::RadiusOutOfIndexRange { .. } => 4,
        GpSsnError::Infeasible { .. } => 5,
        GpSsnError::DeadlineExceeded => 6,
        GpSsnError::BudgetExhausted { .. } => 7,
        GpSsnError::DeadlineExpired => 9,
        GpSsnError::IndexCorrupt { .. } => 65,
        GpSsnError::Overloaded { .. } => 69,
        GpSsnError::Internal(_) => 70,
    }
}

/// Exit code for an answer that was degraded to the sampling baseline:
/// the result is feasible but carries no optimality bound.
const EXIT_DEGRADED: i32 = 8;

fn fail(e: &GpSsnError) -> ! {
    eprintln!("gpq: {e}");
    std::process::exit(exit_code(e));
}

/// Parses the value following flag `name`, exiting with usage on errors.
fn take<T: std::str::FromStr>(args: &[String], i: &mut usize, name: &str, what: &str) -> T {
    *i += 1;
    let Some(raw) = args.get(*i) else {
        die_usage(&format!("{name} takes {what}"));
    };
    raw.parse()
        .unwrap_or_else(|_| die_usage(&format!("{name} takes {what}, got {raw:?}")))
}

/// Loads the dataset (exit 66 on failure), narrating progress on
/// stderr — shared by single-query and serve mode.
fn load_dataset(data: &str) -> SpatialSocialNetwork {
    eprintln!("loading {data}...");
    let ssn = load_ssn(data).unwrap_or_else(|e| {
        eprintln!("gpq: cannot load {data}: {e}");
        std::process::exit(66);
    });
    eprintln!("  {}", DatasetStats::of(&ssn));
    ssn
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve_main(&args[1..]);
    }
    let mut data = String::from("dataset.ssn");
    let mut q = GpSsnQuery::with_defaults(0);
    let mut top_k = 1usize;
    let mut approx: Option<usize> = None;
    let mut tune: Option<f64> = None;
    let mut budget = QueryBudget::unlimited();
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut log_jsonl = false;
    let mut chaos_seed: Option<u64> = None;
    let mut build_threads = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data" => {
                i += 1;
                match args.get(i) {
                    Some(v) => data = v.clone(),
                    None => die_usage("--data takes a file path"),
                }
            }
            "--user" => q.user = take(&args, &mut i, "--user", "an id"),
            "--tau" => q.tau = take(&args, &mut i, "--tau", "an integer"),
            "--gamma" => q.gamma = take(&args, &mut i, "--gamma", "a float"),
            "--theta" => q.theta = take(&args, &mut i, "--theta", "a float"),
            "--r" => q.radius = take(&args, &mut i, "--r", "a float"),
            "--top-k" => top_k = take(&args, &mut i, "--top-k", "an integer"),
            "--approx" => approx = Some(take(&args, &mut i, "--approx", "a sample count")),
            "--tune" => tune = Some(take(&args, &mut i, "--tune", "a percentile in [0,1]")),
            "--build-threads" => {
                build_threads = take(&args, &mut i, "--build-threads", "a count (0 = all cores)")
            }
            "--timeout-ms" => {
                budget.deadline = Some(Duration::from_millis(take(
                    &args,
                    &mut i,
                    "--timeout-ms",
                    "milliseconds",
                )))
            }
            "--max-pops" => {
                budget.max_heap_pops = Some(take(&args, &mut i, "--max-pops", "a count"))
            }
            "--max-groups" => {
                budget.max_groups_enumerated = Some(take(&args, &mut i, "--max-groups", "a count"))
            }
            "--max-settles" => {
                budget.max_dijkstra_settles = Some(take(&args, &mut i, "--max-settles", "a count"))
            }
            "--trace-out" => trace_out = Some(take(&args, &mut i, "--trace-out", "a file path")),
            "--metrics-out" => {
                metrics_out = Some(take(&args, &mut i, "--metrics-out", "a file path"))
            }
            "--chaos-seed" => chaos_seed = Some(take(&args, &mut i, "--chaos-seed", "a seed")),
            "--log" => {
                let fmt: String = take(&args, &mut i, "--log", "a format (jsonl)");
                match fmt.as_str() {
                    "jsonl" => log_jsonl = true,
                    other => die_usage(&format!("--log supports jsonl, got {other:?}")),
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other => die_usage(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    let ssn = load_dataset(&data);

    if let Some(pctl) = tune {
        let tuned = suggest_parameters(&ssn, &[], pctl, 512, 7);
        q.gamma = tuned.gamma;
        q.theta = tuned.theta;
        eprintln!(
            "tuned from data distributions (pctl {pctl}): gamma={:.3} theta={:.3}",
            q.gamma, q.theta
        );
    }

    let obs = (trace_out.is_some() || metrics_out.is_some() || log_jsonl).then(|| {
        Arc::new(Obs::new(ObsConfig {
            metrics: true,
            tracing: trace_out.is_some(),
            trace_capacity: 1 << 16,
        }))
    });

    eprintln!("building indexes...");
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            obs: obs.clone(),
            ..Default::default()
        }
        .with_build_threads(build_threads),
    );
    eprintln!(
        "  I_R {} pages, I_S {} pages",
        engine.road_index().num_pages(),
        engine.social_index().num_pages()
    );
    eprintln!("query: {q:?}");

    // Chaos: arm the fault plan only now, for the serving phase, so
    // injected faults exercise the degradation ladder rather than
    // dataset loading or index construction. The ladder is enabled so
    // faults downgrade answers instead of failing queries outright.
    let mut opts = QueryOptions::default();
    if chaos_seed.is_some() {
        opts.degradation = DegradationPolicy::Ladder;
    }
    #[cfg(feature = "failpoints")]
    let _chaos = chaos_seed.map(|seed| {
        eprintln!("chaos: fault plan armed (seed {seed}, p=0.05 per fail-point hit)");
        gpssn_failpoint::install(gpssn_failpoint::FaultPlan::uniform(seed, 0.05))
    });
    #[cfg(not(feature = "failpoints"))]
    if let Some(seed) = chaos_seed {
        eprintln!(
            "gpq: --chaos-seed {seed} has no fault plan to install: this binary was built \
             without the `failpoints` feature (rebuild with `--features failpoints`)"
        );
    }

    let sinks = TelemetrySinks {
        obs,
        trace_out,
        metrics_out,
        log_jsonl,
    };
    if let Some(samples) = approx {
        let out = match engine.try_query_approximate(&q, samples, 7, &budget) {
            Ok(out) => out,
            Err(e) => {
                // Failed queries are when the trace matters most —
                // flush before the error exit.
                emit_telemetry(&sinks, &engine, &q, "approximate", None);
                fail(&e)
            }
        };
        emit_telemetry(&sinks, &engine, &q, "approximate", Some(&out));
        let code = report_completion(&out.completion);
        report(
            "approximate",
            &out.answer,
            out.metrics.io_pages,
            out.metrics.cpu,
        );
        std::process::exit(code);
    }
    if top_k > 1 {
        let out = match engine.try_query_top_k(&q, top_k, &budget) {
            Ok(out) => out,
            Err(e) => {
                emit_telemetry(&sinks, &engine, &q, "top_k", None);
                fail(&e)
            }
        };
        emit_telemetry(&sinks, &engine, &q, "top_k", None);
        let code = report_completion(&out.completion);
        if out.answers.is_empty() {
            println!("no feasible answers");
        }
        for (rank, ans) in out.answers.iter().enumerate() {
            println!(
                "#{}: maxdist={:.4} S={:?} R={:?}",
                rank + 1,
                ans.maxdist,
                ans.users,
                ans.pois
            );
        }
        std::process::exit(code);
    }
    let out = match engine.try_query_with_options(&q, &opts, &budget) {
        Ok(out) => out,
        Err(e) => {
            emit_telemetry(&sinks, &engine, &q, "exact", None);
            fail(&e)
        }
    };
    emit_telemetry(&sinks, &engine, &q, "exact", Some(&out));
    let code = report_completion(&out.completion);
    let mode = match out.completion {
        Completion::Exact => "exact",
        Completion::DegradedSampling => "degraded",
        _ => "anytime",
    };
    report(mode, &out.answer, out.metrics.io_pages, out.metrics.cpu);
    std::process::exit(code);
}

/// Where this run's telemetry goes, if anywhere.
struct TelemetrySinks {
    obs: Option<Arc<Obs>>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    log_jsonl: bool,
}

/// Flushes telemetry after the query: the cache gauges are published,
/// then the Chrome trace / Prometheus exposition files are written and
/// the JSONL log line printed. File-write failures are warnings — the
/// query result has already been computed and still gets reported.
fn emit_telemetry(
    sinks: &TelemetrySinks,
    engine: &GpSsnEngine,
    q: &GpSsnQuery,
    path: &str,
    out: Option<&QueryOutcome>,
) {
    let Some(obs) = &sinks.obs else {
        return;
    };
    engine.publish_cache_metrics();
    let snap = obs.base_registry().snapshot();
    if sinks.log_jsonl {
        println!("{}", jsonl_line(&snap, q, path, out));
    }
    if let Some(p) = &sinks.metrics_out {
        if let Err(e) = std::fs::write(p, snap.to_prometheus()) {
            eprintln!("gpq: cannot write {p}: {e}");
        } else {
            eprintln!("metrics written to {p}");
        }
    }
    if let Some(p) = &sinks.trace_out {
        let records = obs.tracer().records();
        if let Err(e) = std::fs::write(p, gpssn_obs::chrome_trace_json(&records)) {
            eprintln!("gpq: cannot write {p}: {e}");
        } else {
            eprintln!(
                "trace with {} spans written to {p} (open in chrome://tracing or Perfetto)",
                records.len()
            );
        }
    }
}

/// One structured log line: query parameters, outcome, per-phase
/// durations pulled from the registry's histograms, and cache tallies.
fn jsonl_line(
    snap: &gpssn_obs::Snapshot,
    q: &GpSsnQuery,
    path: &str,
    out: Option<&QueryOutcome>,
) -> String {
    let mut line = format!(
        "{{\"event\":\"query\",\"path\":\"{path}\",\"user\":{},\"tau\":{},\
         \"gamma\":{},\"theta\":{},\"r\":{}",
        q.user, q.tau, q.gamma, q.theta, q.radius
    );
    if let Some(out) = out {
        let class = out.completion.rung();
        line.push_str(&format!(
            ",\"completion\":\"{class}\",\"cpu_us\":{},\"io_pages\":{},\
             \"heap_pops\":{},\"dijkstra_settles\":{},\"ch_settles\":{},\
             \"cache_hit_rate\":{:.4}",
            out.metrics.cpu.as_micros(),
            out.metrics.io_pages,
            out.metrics.heap_pops,
            out.metrics.backend_served.dijkstra_settles,
            out.metrics.backend_served.ch_settles,
            out.metrics.cache.hit_rate(),
        ));
        match &out.answer {
            Some(ans) => line.push_str(&format!(
                ",\"maxdist\":{},\"group_size\":{},\"pois\":{}",
                ans.maxdist,
                ans.users.len(),
                ans.pois.len()
            )),
            None => line.push_str(",\"maxdist\":null"),
        }
    }
    line.push_str(",\"phases\":{");
    let mut first = true;
    for phase in [
        "prune_social",
        "prune_road",
        "refine",
        "refine_fallback",
        "sample",
    ] {
        if let Some(h) = snap.histogram("gpssn_phase_duration_ns", &[("phase", phase)]) {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&format!(
                "\"{phase}\":{{\"ns\":{},\"count\":{}}}",
                h.sum, h.count
            ));
        }
    }
    line.push_str("}}");
    line
}

/// A `Failed` completion is a hard error (the budget tripped before any
/// answer was verified); a truncation with an answer is reported as a
/// success carrying its optimality-gap bound. A sampling-degraded answer
/// is flagged on stderr and maps the whole run to [`EXIT_DEGRADED`] so
/// scripts can distinguish it from a bounded result. Returns the exit
/// code the run should finish with once the answer has been printed.
fn report_completion(c: &Completion) -> i32 {
    match c {
        Completion::Exact => 0,
        Completion::TruncatedWithGap(gap) => {
            println!("completion: truncated (optimum within {gap:.4} below reported maxdist)");
            0
        }
        Completion::DegradedSampling => {
            eprintln!(
                "gpq: degraded answer: exact refinement failed and the sampling baseline \
                 rescued a feasible group (no optimality bound)"
            );
            EXIT_DEGRADED
        }
        Completion::Failed(e) => fail(e),
    }
}

/// `gpq serve`: build once, answer a JSONL request stream. Never
/// returns.
fn serve_main(args: &[String]) -> ! {
    let mut data = String::from("dataset.ssn");
    let mut queries: Option<String> = None;
    let mut threads = 0usize;
    let mut queue_cap = 256usize;
    let mut shed = false;
    let mut budget = QueryBudget::unlimited();
    let mut metrics_out: Option<String> = None;
    let mut slo_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut telemetry_addr: Option<String> = None;
    let mut slow_ms: Option<u64> = None;
    let mut head_rate: Option<u64> = None;
    let mut flight_cap: Option<usize> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut build_threads = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data" => {
                i += 1;
                match args.get(i) {
                    Some(v) => data = v.clone(),
                    None => die_usage("--data takes a file path"),
                }
            }
            "--queries" => queries = Some(take(args, &mut i, "--queries", "a file path")),
            "--threads" => threads = take(args, &mut i, "--threads", "a count (0 = all cores)"),
            "--build-threads" => {
                build_threads = take(args, &mut i, "--build-threads", "a count (0 = all cores)")
            }
            "--queue-cap" => queue_cap = take(args, &mut i, "--queue-cap", "a count"),
            "--shed" => shed = true,
            "--timeout-ms" => {
                budget.deadline = Some(Duration::from_millis(take(
                    args,
                    &mut i,
                    "--timeout-ms",
                    "milliseconds",
                )))
            }
            "--max-pops" => {
                budget.max_heap_pops = Some(take(args, &mut i, "--max-pops", "a count"))
            }
            "--max-groups" => {
                budget.max_groups_enumerated = Some(take(args, &mut i, "--max-groups", "a count"))
            }
            "--max-settles" => {
                budget.max_dijkstra_settles = Some(take(args, &mut i, "--max-settles", "a count"))
            }
            "--metrics-out" => {
                metrics_out = Some(take(args, &mut i, "--metrics-out", "a file path"))
            }
            "--slo-out" => slo_out = Some(take(args, &mut i, "--slo-out", "a file path")),
            "--trace-out" => trace_out = Some(take(args, &mut i, "--trace-out", "a file path")),
            "--telemetry-addr" => {
                telemetry_addr = Some(take(
                    args,
                    &mut i,
                    "--telemetry-addr",
                    "a bind address (host:port)",
                ))
            }
            "--slow-ms" => {
                slow_ms = Some(take(
                    args,
                    &mut i,
                    "--slow-ms",
                    "milliseconds (0 disables the slow-trace trigger)",
                ))
            }
            "--head-rate" => {
                head_rate = Some(take(
                    args,
                    &mut i,
                    "--head-rate",
                    "a 1-in-N rate (0 keeps no boring traces)",
                ))
            }
            "--flight-cap" => {
                flight_cap = Some(take(args, &mut i, "--flight-cap", "a record count"))
            }
            "--chaos-seed" => chaos_seed = Some(take(args, &mut i, "--chaos-seed", "a seed")),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => die_usage(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    let ssn = load_dataset(&data);
    // Tail sampling buffers spans per query, so `--trace-out` needs the
    // tracer on even without a metrics sink.
    let obs = (metrics_out.is_some() || trace_out.is_some()).then(|| {
        Arc::new(Obs::new(ObsConfig {
            metrics: metrics_out.is_some() || telemetry_addr.is_some(),
            tracing: trace_out.is_some(),
            trace_capacity: if trace_out.is_some() { 1 << 16 } else { 0 },
        }))
    });
    eprintln!("building indexes...");
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            obs: obs.clone(),
            ..Default::default()
        }
        .with_build_threads(build_threads),
    );
    eprintln!(
        "  I_R {} pages, I_S {} pages",
        engine.road_index().num_pages(),
        engine.social_index().num_pages()
    );

    let mut options = QueryOptions::default();
    if chaos_seed.is_some() {
        // Same posture as single-query chaos: the ladder downgrades
        // fault-hit requests instead of failing them.
        options.degradation = DegradationPolicy::Ladder;
    }
    #[cfg(feature = "failpoints")]
    let _chaos = chaos_seed.map(|seed| {
        eprintln!("chaos: fault plan armed (seed {seed}, p=0.05 per fail-point hit)");
        gpssn_failpoint::install(gpssn_failpoint::FaultPlan::uniform(seed, 0.05))
    });
    #[cfg(not(feature = "failpoints"))]
    if let Some(seed) = chaos_seed {
        eprintln!(
            "gpq: --chaos-seed {seed} has no fault plan to install: this binary was built \
             without the `failpoints` feature (rebuild with `--features failpoints`)"
        );
    }

    let defaults = TailConfig::default();
    let obs_cfg = ServeObsConfig {
        flight: FlightConfig {
            capacity: flight_cap.unwrap_or_else(|| FlightConfig::default().capacity),
        },
        tail: TailConfig {
            latency_threshold: match slow_ms {
                Some(0) => None,
                Some(ms) => Some(Duration::from_millis(ms)),
                None => defaults.latency_threshold,
            },
            head_rate: head_rate.unwrap_or(defaults.head_rate),
            seed: chaos_seed.unwrap_or(defaults.seed),
        },
        ..Default::default()
    };
    let tele = Arc::new(ServeObs::new(&obs_cfg));
    let cfg = ServeConfig {
        threads,
        queue_capacity: queue_cap,
        default_budget: budget,
        options,
        overload: if shed {
            OverloadPolicy::Shed
        } else {
            OverloadPolicy::Block
        },
        telemetry: Arc::clone(&tele),
        telemetry_addr: telemetry_addr.clone(),
    };
    // One incremental line reader serves both modes: a request file and
    // stdin are the same stream to `serve_jsonl`.
    let reader: Box<dyn BufRead> = match &queries {
        Some(path) => {
            let f = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("gpq: cannot open {path}: {e}");
                std::process::exit(66);
            });
            Box::new(std::io::BufReader::new(f))
        }
        None => {
            eprintln!("serving: reading JSONL requests from stdin (one object per line)");
            Box::new(std::io::stdin().lock())
        }
    };
    // Announce the bound telemetry address (resolved inside `serve`,
    // useful with a `:0` port) or the bind failure, from a detached
    // poller so the serve loop itself stays print-free.
    if telemetry_addr.is_some() {
        let tele = Arc::clone(&tele);
        std::thread::spawn(move || {
            for _ in 0..500 {
                if let Some(addr) = tele.telemetry_addr() {
                    eprintln!(
                        "telemetry: listening on http://{addr} (/metrics /health /slo /flight)"
                    );
                    return;
                }
                if let Some(e) = tele.listener_error() {
                    eprintln!("gpq: telemetry listener never started: {e}");
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        });
    }
    let sinks = ServeSinks {
        metrics_out,
        slo_out,
        trace_out,
    };
    let stats = match serve_jsonl(&engine, &cfg, reader, std::io::stdout()) {
        Ok(stats) => stats,
        Err(e) => {
            // A broken stream must not lose the telemetry already
            // gathered: flush everything before the 74 exit.
            eprintln!("gpq: serve stream I/O error: {e}");
            flush_serve_telemetry(&sinks, &engine, &obs, &tele);
            std::process::exit(74);
        }
    };
    eprintln!(
        "served: {} submitted, {} ran, {} shed expired, {} shed overloaded, {} malformed",
        stats.submitted, stats.served, stats.shed_expired, stats.shed_overloaded, stats.rejected
    );
    flush_serve_telemetry(&sinks, &engine, &obs, &tele);
    std::process::exit(0);
}

/// Where `gpq serve` dumps its telemetry when the stream ends — cleanly
/// or not.
struct ServeSinks {
    metrics_out: Option<String>,
    slo_out: Option<String>,
    trace_out: Option<String>,
}

/// Writes every requested telemetry artifact. Called on *all* serve
/// exits (clean EOF and stream I/O error alike): partial telemetry from
/// a crashed stream is exactly what the post-mortem needs. Write
/// failures are warnings — the exit code belongs to the stream.
fn flush_serve_telemetry(
    sinks: &ServeSinks,
    engine: &GpSsnEngine,
    obs: &Option<Arc<Obs>>,
    tele: &ServeObs,
) {
    if let Some(p) = &sinks.metrics_out {
        // Same snapshot the /metrics route serves: the engine registry
        // refreshed with cache + serve-layer series when a sink is
        // attached, else a scratch registry with just the serve layer.
        let snap = match obs {
            Some(obs) => {
                engine.publish_cache_metrics();
                tele.publish(obs.base_registry());
                obs.base_registry().snapshot()
            }
            None => {
                let reg = Registry::new();
                tele.publish(&reg);
                reg.snapshot()
            }
        };
        if let Err(e) = std::fs::write(p, snap.to_prometheus()) {
            eprintln!("gpq: cannot write {p}: {e}");
        } else {
            eprintln!("metrics written to {p}");
        }
    }
    if let Some(p) = &sinks.slo_out {
        let line = format!("{}\n", tele.slo().to_json(tele.slo().now_ns()));
        if let Err(e) = std::fs::write(p, line) {
            eprintln!("gpq: cannot write {p}: {e}");
        } else {
            eprintln!("SLO window written to {p}");
        }
    }
    if let Some(p) = &sinks.trace_out {
        let records = obs
            .as_ref()
            .map(|o| o.tracer().records())
            .unwrap_or_default();
        if let Err(e) = std::fs::write(p, gpssn_obs::chrome_trace_json(&records)) {
            eprintln!("gpq: cannot write {p}: {e}");
        } else {
            let (outcome, slow, head, dropped) = tele.tail().stats();
            eprintln!(
                "trace with {} spans written to {p} (tail sampling kept \
                 {outcome} by outcome, {slow} slow, {head} head; dropped {dropped})",
                records.len()
            );
        }
    }
}

fn report(mode: &str, answer: &Option<gpssn_core::GpSsnAnswer>, io: u64, cpu: std::time::Duration) {
    match answer {
        Some(ans) => println!(
            "{mode} answer: maxdist={:.4} S={:?} R={:?}",
            ans.maxdist, ans.users, ans.pois
        ),
        None => println!("{mode}: no feasible answer"),
    }
    println!("cost: {cpu:.2?}, {io} page accesses");
}
