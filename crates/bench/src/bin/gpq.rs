//! GP-SSN query CLI: loads a `.ssn` dataset (see `datagen`), builds the
//! indexes, and answers queries from the command line.
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin gpq -- \
//!     --data city.ssn --user 11 --tau 4 --gamma 0.3 --theta 0.4 --r 2 \
//!     [--top-k 3] [--approx 64] [--tune 0.7]
//! ```

use gpssn_core::{suggest_parameters, EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn_ssn::{load_ssn, DatasetStats};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut data = String::from("dataset.ssn");
    let mut q = GpSsnQuery::with_defaults(0);
    let mut top_k = 1usize;
    let mut approx: Option<usize> = None;
    let mut tune: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data" => {
                i += 1;
                data = args[i].clone();
            }
            "--user" => {
                i += 1;
                q.user = args[i].parse().expect("--user takes an id");
            }
            "--tau" => {
                i += 1;
                q.tau = args[i].parse().expect("--tau takes an integer");
            }
            "--gamma" => {
                i += 1;
                q.gamma = args[i].parse().expect("--gamma takes a float");
            }
            "--theta" => {
                i += 1;
                q.theta = args[i].parse().expect("--theta takes a float");
            }
            "--r" => {
                i += 1;
                q.radius = args[i].parse().expect("--r takes a float");
            }
            "--top-k" => {
                i += 1;
                top_k = args[i].parse().expect("--top-k takes an integer");
            }
            "--approx" => {
                i += 1;
                approx = Some(args[i].parse().expect("--approx takes a sample count"));
            }
            "--tune" => {
                i += 1;
                tune = Some(args[i].parse().expect("--tune takes a percentile in [0,1]"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: gpq --data FILE [--user N] [--tau N] [--gamma F] [--theta F] \
                     [--r F] [--top-k N] [--approx SAMPLES] [--tune PCTL]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("loading {data}...");
    let ssn = load_ssn(&data).expect("failed to load dataset");
    eprintln!("  {}", DatasetStats::of(&ssn));

    if let Some(pctl) = tune {
        let tuned = suggest_parameters(&ssn, &[], pctl, 512, 7);
        q.gamma = tuned.gamma;
        q.theta = tuned.theta;
        eprintln!(
            "tuned from data distributions (pctl {pctl}): gamma={:.3} theta={:.3}",
            q.gamma, q.theta
        );
    }

    eprintln!("building indexes...");
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
    eprintln!(
        "  I_R {} pages, I_S {} pages",
        engine.road_index().num_pages(),
        engine.social_index().num_pages()
    );
    eprintln!("query: {q:?}");

    if let Some(samples) = approx {
        let out = engine.query_approximate(&q, samples, 7);
        report("approximate", &out.answer, out.metrics.io_pages, out.metrics.cpu);
        return;
    }
    if top_k > 1 {
        let answers = engine.query_top_k(&q, top_k);
        if answers.is_empty() {
            println!("no feasible answers");
        }
        for (rank, ans) in answers.iter().enumerate() {
            println!(
                "#{}: maxdist={:.4} S={:?} R={:?}",
                rank + 1,
                ans.maxdist,
                ans.users,
                ans.pois
            );
        }
        return;
    }
    let out = engine.query(&q);
    report("exact", &out.answer, out.metrics.io_pages, out.metrics.cpu);
}

fn report(
    mode: &str,
    answer: &Option<gpssn_core::GpSsnAnswer>,
    io: u64,
    cpu: std::time::Duration,
) {
    match answer {
        Some(ans) => println!(
            "{mode} answer: maxdist={:.4} S={:?} R={:?}",
            ans.maxdist, ans.users, ans.pois
        ),
        None => println!("{mode}: no feasible answer"),
    }
    println!("cost: {cpu:.2?}, {io} page accesses");
}
