//! GP-SSN query CLI: loads a `.ssn` dataset (see `datagen`), builds the
//! indexes, and answers queries from the command line.
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin gpq -- \
//!     --data city.ssn --user 11 --tau 4 --gamma 0.3 --theta 0.4 --r 2 \
//!     [--top-k 3] [--approx 64] [--tune 0.7] \
//!     [--timeout-ms N] [--max-pops N] [--max-groups N] [--max-settles N]
//! ```
//!
//! Every error prints a single line on stderr and maps to a stable exit
//! code so scripts can dispatch on the failure class:
//!
//! | code | class                      |
//! |------|----------------------------|
//! | 2    | usage / invalid query      |
//! | 3    | unknown user               |
//! | 4    | radius outside index range |
//! | 5    | infeasible query           |
//! | 6    | deadline exceeded          |
//! | 7    | resource budget exhausted  |
//! | 66   | dataset unreadable         |
//! | 70   | internal error             |
//!
//! A *tripped budget with an answer in hand* is not an error: the answer
//! is printed with its optimality-gap bound and the exit code is 0.

use gpssn_core::{
    suggest_parameters, Completion, EngineConfig, GpSsnEngine, GpSsnError, GpSsnQuery, QueryBudget,
};
use gpssn_ssn::{load_ssn, DatasetStats};
use std::time::Duration;

const USAGE: &str = "usage: gpq --data FILE [--user N] [--tau N] [--gamma F] [--theta F] \
     [--r F] [--top-k N] [--approx SAMPLES] [--tune PCTL] \
     [--timeout-ms N] [--max-pops N] [--max-groups N] [--max-settles N]";

fn die_usage(msg: &str) -> ! {
    eprintln!("gpq: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn exit_code(e: &GpSsnError) -> i32 {
    match e {
        GpSsnError::InvalidQuery(_) => 2,
        GpSsnError::UnknownUser { .. } => 3,
        GpSsnError::RadiusOutOfIndexRange { .. } => 4,
        GpSsnError::Infeasible { .. } => 5,
        GpSsnError::DeadlineExceeded => 6,
        GpSsnError::BudgetExhausted { .. } => 7,
        GpSsnError::Internal(_) => 70,
    }
}

fn fail(e: &GpSsnError) -> ! {
    eprintln!("gpq: {e}");
    std::process::exit(exit_code(e));
}

/// Parses the value following flag `name`, exiting with usage on errors.
fn take<T: std::str::FromStr>(args: &[String], i: &mut usize, name: &str, what: &str) -> T {
    *i += 1;
    let Some(raw) = args.get(*i) else {
        die_usage(&format!("{name} takes {what}"));
    };
    raw.parse()
        .unwrap_or_else(|_| die_usage(&format!("{name} takes {what}, got {raw:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut data = String::from("dataset.ssn");
    let mut q = GpSsnQuery::with_defaults(0);
    let mut top_k = 1usize;
    let mut approx: Option<usize> = None;
    let mut tune: Option<f64> = None;
    let mut budget = QueryBudget::unlimited();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data" => {
                i += 1;
                match args.get(i) {
                    Some(v) => data = v.clone(),
                    None => die_usage("--data takes a file path"),
                }
            }
            "--user" => q.user = take(&args, &mut i, "--user", "an id"),
            "--tau" => q.tau = take(&args, &mut i, "--tau", "an integer"),
            "--gamma" => q.gamma = take(&args, &mut i, "--gamma", "a float"),
            "--theta" => q.theta = take(&args, &mut i, "--theta", "a float"),
            "--r" => q.radius = take(&args, &mut i, "--r", "a float"),
            "--top-k" => top_k = take(&args, &mut i, "--top-k", "an integer"),
            "--approx" => approx = Some(take(&args, &mut i, "--approx", "a sample count")),
            "--tune" => tune = Some(take(&args, &mut i, "--tune", "a percentile in [0,1]")),
            "--timeout-ms" => {
                budget.deadline = Some(Duration::from_millis(take(
                    &args,
                    &mut i,
                    "--timeout-ms",
                    "milliseconds",
                )))
            }
            "--max-pops" => {
                budget.max_heap_pops = Some(take(&args, &mut i, "--max-pops", "a count"))
            }
            "--max-groups" => {
                budget.max_groups_enumerated = Some(take(&args, &mut i, "--max-groups", "a count"))
            }
            "--max-settles" => {
                budget.max_dijkstra_settles = Some(take(&args, &mut i, "--max-settles", "a count"))
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other => die_usage(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    eprintln!("loading {data}...");
    let ssn = load_ssn(&data).unwrap_or_else(|e| {
        eprintln!("gpq: cannot load {data}: {e}");
        std::process::exit(66);
    });
    eprintln!("  {}", DatasetStats::of(&ssn));

    if let Some(pctl) = tune {
        let tuned = suggest_parameters(&ssn, &[], pctl, 512, 7);
        q.gamma = tuned.gamma;
        q.theta = tuned.theta;
        eprintln!(
            "tuned from data distributions (pctl {pctl}): gamma={:.3} theta={:.3}",
            q.gamma, q.theta
        );
    }

    eprintln!("building indexes...");
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
    eprintln!(
        "  I_R {} pages, I_S {} pages",
        engine.road_index().num_pages(),
        engine.social_index().num_pages()
    );
    eprintln!("query: {q:?}");

    if let Some(samples) = approx {
        let out = match engine.try_query_approximate(&q, samples, 7, &budget) {
            Ok(out) => out,
            Err(e) => fail(&e),
        };
        report_completion(&out.completion);
        report(
            "approximate",
            &out.answer,
            out.metrics.io_pages,
            out.metrics.cpu,
        );
        return;
    }
    if top_k > 1 {
        let out = match engine.try_query_top_k(&q, top_k, &budget) {
            Ok(out) => out,
            Err(e) => fail(&e),
        };
        report_completion(&out.completion);
        if out.answers.is_empty() {
            println!("no feasible answers");
        }
        for (rank, ans) in out.answers.iter().enumerate() {
            println!(
                "#{}: maxdist={:.4} S={:?} R={:?}",
                rank + 1,
                ans.maxdist,
                ans.users,
                ans.pois
            );
        }
        return;
    }
    let out = match engine.try_query(&q, &budget) {
        Ok(out) => out,
        Err(e) => fail(&e),
    };
    report_completion(&out.completion);
    let mode = if matches!(out.completion, Completion::Exact) {
        "exact"
    } else {
        "anytime"
    };
    report(mode, &out.answer, out.metrics.io_pages, out.metrics.cpu);
}

/// A `Failed` completion is a hard error (the budget tripped before any
/// answer was verified); a truncation with an answer is reported as a
/// success carrying its optimality-gap bound.
fn report_completion(c: &Completion) {
    match c {
        Completion::Exact => {}
        Completion::TruncatedWithGap(gap) => {
            println!("completion: truncated (optimum within {gap:.4} below reported maxdist)")
        }
        Completion::Failed(e) => fail(e),
    }
}

fn report(mode: &str, answer: &Option<gpssn_core::GpSsnAnswer>, io: u64, cpu: std::time::Duration) {
    match answer {
        Some(ans) => println!(
            "{mode} answer: maxdist={:.4} S={:?} R={:?}",
            ans.maxdist, ans.users, ans.pois
        ),
        None => println!("{mode}: no feasible answer"),
    }
    println!("cost: {cpu:.2?}, {io} page accesses");
}
