//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin experiments -- all
//! cargo run --release -p gpssn-bench --bin experiments -- fig8 fig9 --scale 0.2
//! ```
//!
//! Flags: `--scale <f64>` (dataset scale, default 0.1), `--seed <u64>`,
//! `--queries <n>` (queries averaged per point, default 5).

use gpssn_bench::experiments::{fig7, fig8, sweeps, tables};
use gpssn_bench::runner::ExperimentContext;

const ALL: &[&str] = &[
    "table1",
    "table2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "appP-theta",
    "appP-r",
    "appP-gamma",
    "appP-pivots",
    "appP-vs",
    "cache",
];

fn die_usage(msg: &str) -> ! {
    eprintln!("experiments: {msg}");
    eprintln!("usage: experiments [IDS...] [--scale F] [--seed N] [--queries N]  (ids: {ALL:?})");
    std::process::exit(2);
}

/// Parses the value following flag `name`, exiting with usage on errors.
fn take<T: std::str::FromStr>(args: &[String], i: &mut usize, name: &str, what: &str) -> T {
    *i += 1;
    let Some(raw) = args.get(*i) else {
        die_usage(&format!("{name} takes {what}"));
    };
    raw.parse()
        .unwrap_or_else(|_| die_usage(&format!("{name} takes {what}, got {raw:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExperimentContext::default();
    if let Ok(s) = std::env::var("GPSSN_SCALE") {
        ctx.scale = s
            .parse()
            .unwrap_or_else(|_| die_usage(&format!("GPSSN_SCALE must be a float, got {s:?}")));
    }
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => ctx.scale = take(&args, &mut i, "--scale", "a float"),
            "--seed" => ctx.seed = take(&args, &mut i, "--seed", "an integer"),
            "--queries" => ctx.queries_per_point = take(&args, &mut i, "--queries", "an integer"),
            flag if flag.starts_with("--") => die_usage(&format!("unknown flag {flag:?}")),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() || ids.iter().any(|s| s == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }
    println!(
        "GP-SSN experiment harness  (scale {}, seed {}, {} queries/point)",
        ctx.scale, ctx.seed, ctx.queries_per_point
    );
    for id in &ids {
        run(id, &ctx);
    }
}

fn run(id: &str, ctx: &ExperimentContext) {
    match id {
        "table1" => {
            for t in tables::table1() {
                t.print();
            }
        }
        "table2" => tables::table2(ctx).print(),
        "fig7" | "fig7a" | "fig7b" | "fig7c" | "fig7d" => {
            for t in fig7::fig7(ctx) {
                t.print();
            }
        }
        "fig8" => fig8::fig8(ctx).print(),
        "fig9" => sweeps::fig9(ctx).print(),
        "fig10" => sweeps::fig10(ctx).print(),
        "fig11" => sweeps::fig11(ctx).print(),
        "appP-theta" => sweeps::app_p_theta(ctx).print(),
        "appP-r" => sweeps::app_p_r(ctx).print(),
        "appP-gamma" => sweeps::app_p_gamma(ctx).print(),
        "appP-pivots" => sweeps::app_p_pivots(ctx).print(),
        "appP-vs" => sweeps::app_p_vs(ctx).print(),
        "cache" => sweeps::cache_sweep(ctx).print(),
        other => die_usage(&format!("unknown experiment id: {other}")),
    }
}
