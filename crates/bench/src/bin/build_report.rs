//! Index-build pipeline report distilled into `BENCH_build.json`: what
//! the parallel deterministic builders buy, stage by stage.
//!
//! The report first proves the tentpole invariant, then prices it:
//!
//! * **Determinism gate** — the full road-index pipeline (pivot tables,
//!   POI augmentation, STR packing, CH contraction) is built at every
//!   thread count in `{1, 2, 4, 8, 0}` (`0` = all cores) and serialized;
//!   the byte streams must be identical (one CRC-32 reported for all of
//!   them) and the social index must match node-for-node. The gate runs
//!   **before** any number is reported — a report about builds that
//!   disagree would be meaningless.
//! * **Measured per-stage wall clock** at one thread — the honest
//!   sequential cost of each pipeline stage, straight from
//!   [`gpssn_index::BuildStages`].
//! * **Simulated makespan** per thread count, from those measured costs:
//!   each data-parallel stage divides over `min(threads, ceil(items /
//!   floor))` workers with the builders' actual chunk rounding; the CH
//!   stage uses its *measured* parallel/sequential split
//!   ([`gpssn_graph::ChBuildStats::par_ns`] clocks the fan-out sections,
//!   the remainder is the inherently sequential select/merge); stages
//!   the simulation cannot attribute (STR packing, node aggregation,
//!   partition bookkeeping) are counted fully sequential — the model
//!   *understates* the real speedup. On a machine with ≥`threads` real
//!   cores the simulated makespan is the wall clock this single-core
//!   container cannot measure directly (same discipline as
//!   `serve_report` / BENCH.md §serve); measured wall clocks are still
//!   reported for honesty.
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin build_report -- \
//!     [--scale F] [--seed N] [--out BENCH_build.json]
//! ```
//!
//! CI determinism mode — build once at a fixed thread count and dump the
//! serialized index (the workflow builds at 1 and 4 threads and diffs
//! the files):
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin build_report -- \
//!     --threads N --index-out road_index.bin [--scale F] [--seed N]
//! ```

use gpssn_index::{
    select_road_pivots, select_social_pivots, write_road_index, BuildStages, PivotSelectConfig,
    RoadIndex, RoadIndexConfig, SocialIndex, SocialIndexConfig,
};
use gpssn_road::RoadPivots;
use gpssn_social::SocialPivots;
use gpssn_ssn::{DatasetKind, SpatialSocialNetwork};
use std::io::Write;
use std::time::{Duration, Instant};

/// Pivot counts `h` / `l` (the engine defaults).
const NUM_PIVOTS: usize = 5;
/// One simulation row: stage name, measured sequential cost, and —
/// for chunk-parallel stages — the divisible item count and chunk
/// floor (`None` = counted fully sequential).
type StageRow = (&'static str, f64, Option<(usize, usize)>);
/// The road/social builders' minimum items per worker
/// (`gpssn_index::build::PAR_FLOOR`).
const PAR_FLOOR: usize = 32;

/// One full pipeline build at `threads` workers: road pivot tables,
/// `I_R`, social pivot tables, `I_S` — exactly the engine's build path,
/// with pivot *selection* (thread-independent by construction) hoisted
/// out so every build contracts the same inputs.
struct PipelineBuild {
    road: RoadIndex,
    social: SocialIndex,
    road_stages: BuildStages,
    social_stages: BuildStages,
    road_pivots_s: f64,
    social_pivots_s: f64,
    wall_s: f64,
}

fn build_pipeline(
    ssn: &SpatialSocialNetwork,
    road_pivot_ids: &[u32],
    social_pivot_ids: &[u32],
    threads: usize,
) -> PipelineBuild {
    let t_all = Instant::now();
    let t0 = Instant::now();
    let road_pivots = RoadPivots::new_with_threads(ssn.road(), road_pivot_ids.to_vec(), threads);
    let road_pivots_s = t0.elapsed().as_secs_f64();

    let mut road_cfg = RoadIndexConfig::default();
    road_cfg.build.threads = threads;
    let (road, road_stages) =
        RoadIndex::build_with_stages(ssn.road(), ssn.pois(), road_pivots, road_cfg);

    let t0 = Instant::now();
    let social_pivots =
        SocialPivots::new_with_threads(ssn.social(), social_pivot_ids.to_vec(), threads);
    let social_pivots_s = t0.elapsed().as_secs_f64();

    let mut social_cfg = SocialIndexConfig::default();
    social_cfg.build.threads = threads;
    let (social, social_stages) =
        SocialIndex::build_with_stages(ssn, social_pivots, road.pivots(), &social_cfg);
    PipelineBuild {
        road,
        social,
        road_stages,
        social_stages,
        road_pivots_s,
        social_pivots_s,
        wall_s: t_all.elapsed().as_secs_f64(),
    }
}

fn serialize_road(idx: &RoadIndex) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_road_index(idx, &mut bytes).expect("serialize road index");
    bytes
}

/// Social indexes compared through their public surface: shape plus
/// every node's full debug rendering (MBRs, keyword unions, pivot
/// bounds, children) and both per-user pivot tables, bit for bit.
fn same_social(a: &SocialIndex, b: &SocialIndex, num_users: usize) -> bool {
    if a.root() != b.root() || a.height() != b.height() || a.num_pages() != b.num_pages() {
        return false;
    }
    if (0..a.num_pages() as u32)
        .any(|id| format!("{:?}", a.node(id)) != format!("{:?}", b.node(id)))
    {
        return false;
    }
    (0..num_users as u32).all(|u| {
        a.user_sn_dists(u) == b.user_sn_dists(u)
            && a.user_rn_dists(u)
                .iter()
                .zip(b.user_rn_dists(u))
                .all(|(x, y)| x.to_bits() == y.to_bits())
    })
}

/// Simulated makespan of a chunk-parallel stage: the builders assign
/// `ceil(items / workers)` contiguous items to each of
/// `min(threads, ceil(items / floor))` workers, so the critical path is
/// the largest chunk at the measured per-item cost.
fn sim_chunked(cost_s: f64, items: usize, floor: usize, threads: usize) -> f64 {
    if items == 0 || threads <= 1 {
        return cost_s;
    }
    let workers = threads.min(items.div_ceil(floor)).max(1);
    let chunk = items.div_ceil(workers);
    cost_s * chunk as f64 / items as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut out = String::from("BENCH_build.json");
    let mut threads_mode: Option<usize> = None;
    let mut index_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--threads" => {
                i += 1;
                threads_mode = Some(args[i].parse().expect("--threads takes a count (0 = all)"));
            }
            "--index-out" => {
                i += 1;
                index_out = Some(args[i].clone());
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: build_report [--scale F] [--seed N] [--out FILE]\n\
                     \x20      build_report --threads N --index-out FILE [--scale F] [--seed N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let ssn = DatasetKind::Uni.build(scale, seed);
    let n_pois = ssn.pois().len();
    let m_users = ssn.social().num_users();
    eprintln!("dataset Uni scale {scale}: {n_pois} POIs, {m_users} users");

    let ps = PivotSelectConfig {
        count: NUM_PIVOTS,
        ..Default::default()
    };
    let road_pivot_ids = select_road_pivots(ssn.road(), &ps);
    let social_pivot_ids = select_social_pivots(ssn.social(), &ps);

    // CI determinism mode: one build, dump the serialized index, done.
    if let Some(path) = index_out {
        let threads = threads_mode.unwrap_or(1);
        let b = build_pipeline(&ssn, &road_pivot_ids, &social_pivot_ids, threads);
        let bytes = serialize_road(&b.road);
        let crc = gpssn_index::crc32::crc32(&bytes);
        std::fs::write(&path, &bytes).expect("write index file");
        eprintln!(
            "threads {threads}: {} bytes, crc32 {crc:#010x} -> {path}",
            bytes.len()
        );
        return;
    }

    // Determinism gate: every thread count must serialize to the same
    // bytes (and the same social index) before any cost is reported.
    let thread_counts = [1usize, 2, 4, 8, 0];
    let mut builds = Vec::new();
    for &t in &thread_counts {
        builds.push((
            t,
            build_pipeline(&ssn, &road_pivot_ids, &social_pivot_ids, t),
        ));
    }
    let baseline_bytes = serialize_road(&builds[0].1.road);
    let crc = gpssn_index::crc32::crc32(&baseline_bytes);
    for (t, b) in &builds[1..] {
        assert_eq!(
            serialize_road(&b.road),
            baseline_bytes,
            "road index bytes diverge at threads={t}"
        );
        assert!(
            same_social(&b.social, &builds[0].1.social, m_users),
            "social index diverges at threads={t}"
        );
    }
    eprintln!(
        "determinism: {} serialized road-index bytes identical across threads {:?}, crc32 {crc:#010x}",
        baseline_bytes.len(),
        thread_counts
    );

    // Per-stage sequential costs from the threads=1 build.
    let one = &builds[0].1;
    let num_leaves = (0..one.social.num_pages() as u32)
        .filter(|&id| one.social.node(id).level == 0)
        .count();
    let ch = one.road_stages.ch.expect("CH enabled by default");
    let ch_total = one
        .road_stages
        .get("ch_contract")
        .unwrap_or(Duration::ZERO)
        .as_secs_f64();
    let ch_par = (ch.par_ns as f64 * 1e-9).min(ch_total);
    let ch_seq = ch_total - ch_par;
    // (name, sequential cost, divisible items, chunk floor). `None`
    // items = counted fully sequential in the simulation.
    let stage_of = |stages: &BuildStages, name: &str| -> f64 {
        stages.get(name).unwrap_or(Duration::ZERO).as_secs_f64()
    };
    let stages: Vec<StageRow> = vec![
        ("road_pivots", one.road_pivots_s, Some((NUM_PIVOTS, 1))),
        ("social_pivots", one.social_pivots_s, Some((NUM_PIVOTS, 1))),
        (
            "poi_augment",
            stage_of(&one.road_stages, "poi_augment"),
            Some((n_pois, PAR_FLOOR)),
        ),
        ("rstar_str", stage_of(&one.road_stages, "rstar_str"), None),
        (
            "node_aggregate",
            stage_of(&one.road_stages, "node_aggregate"),
            None,
        ),
        // ch_contract handled via its measured split below.
        (
            "user_tables",
            stage_of(&one.social_stages, "user_tables"),
            Some((m_users, PAR_FLOOR)),
        ),
        (
            "leaf_partition",
            stage_of(&one.social_stages, "leaf_partition"),
            None,
        ),
        (
            "leaf_nodes",
            stage_of(&one.social_stages, "leaf_nodes"),
            Some((num_leaves, PAR_FLOOR)),
        ),
        (
            "tree_levels",
            stage_of(&one.social_stages, "tree_levels"),
            None,
        ),
    ];
    let seq_total: f64 = stages.iter().map(|(_, c, _)| c).sum::<f64>() + ch_total;
    eprintln!(
        "sequential build: {seq_total:.3}s total; ch_contract {ch_total:.3}s \
         ({:.1}% parallel fan-out), poi_augment {:.3}s",
        100.0 * ch_par / ch_total.max(f64::MIN_POSITIVE),
        stage_of(&one.road_stages, "poi_augment"),
    );

    let mut rows = String::new();
    for &(t, ref b) in &builds {
        // `0` means "all cores": simulate at this machine's resolved count.
        let threads = if t == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            t
        };
        let sim_total: f64 = stages
            .iter()
            .map(|&(_, cost, par)| match par {
                Some((items, floor)) => sim_chunked(cost, items, floor, threads),
                None => cost,
            })
            .sum::<f64>()
            + ch_seq
            + ch_par / threads as f64;
        let speedup = seq_total / sim_total;
        eprintln!(
            "threads {t}: simulated {sim_total:.3}s ({speedup:.2}x vs sequential); \
             measured wall {:.3}s",
            b.wall_s
        );
        if !rows.is_empty() {
            rows.push(',');
        }
        rows.push_str(&format!(
            "{{\"threads\":{t},\"sim_total_s\":{sim_total:.6},\"sim_speedup\":{speedup:.4},\
             \"wall_s\":{:.6}}}",
            b.wall_s
        ));
    }

    let mut stage_json = String::new();
    for (name, cost, par) in &stages {
        if !stage_json.is_empty() {
            stage_json.push(',');
        }
        let model = match par {
            Some((items, floor)) => format!("{{\"items\":{items},\"floor\":{floor}}}"),
            None => String::from("\"sequential\""),
        };
        stage_json.push_str(&format!(
            "{{\"name\":\"{name}\",\"seq_s\":{cost:.6},\"par\":{model}}}"
        ));
    }
    stage_json.push_str(&format!(
        ",{{\"name\":\"ch_contract\",\"seq_s\":{ch_total:.6},\
         \"par\":{{\"measured_par_s\":{ch_par:.6},\"measured_seq_s\":{ch_seq:.6}}}}}"
    ));

    let json = format!(
        "{{\"bench\":\"build\",\"dataset\":\"uni\",\"scale\":{scale},\"seed\":{seed},\
         \"pois\":{n_pois},\"users\":{m_users},\"cores\":{},\
         \"determinism\":{{\"thread_counts\":[1,2,4,8,0],\"identical\":true,\
         \"index_bytes\":{},\"crc32\":{crc}}},\
         \"sequential_s\":{seq_total:.6},\
         \"ch\":{{\"rounds\":{},\"shortcuts\":{},\"witness_resets\":{},\
         \"witness_recycles\":{},\"workspaces\":{},\"par_fraction\":{:.4}}},\
         \"stages\":[{stage_json}],\"rows\":[{rows}]}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        baseline_bytes.len(),
        ch.rounds,
        ch.shortcuts,
        ch.witness_resets,
        ch.witness_recycles,
        ch.workspaces,
        ch_par / ch_total.max(f64::MIN_POSITIVE),
    );
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write report");
    eprintln!("report written to {out}");
}
