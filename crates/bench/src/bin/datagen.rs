//! Dataset generator CLI: builds one of the four evaluation datasets and
//! writes it to the plain-text `.ssn` format (readable back by `gpq` and
//! `gpssn_ssn::load_ssn`).
//!
//! ```text
//! cargo run --release -p gpssn-bench --bin datagen -- \
//!     --kind uni --scale 0.1 --seed 42 --out city.ssn
//! ```

use gpssn_ssn::{save_ssn, DatasetKind, DatasetStats};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind = DatasetKind::Uni;
    let mut scale = 0.1f64;
    let mut seed = 42u64;
    let mut out = String::from("dataset.ssn");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kind" => {
                i += 1;
                kind = match args[i].to_lowercase().as_str() {
                    "uni" => DatasetKind::Uni,
                    "zipf" => DatasetKind::Zipf,
                    "bri-cal" | "brical" | "bri+cal" => DatasetKind::BriCal,
                    "gow-col" | "gowcol" | "gow+col" => DatasetKind::GowCol,
                    other => {
                        eprintln!("unknown kind {other:?} (uni|zipf|bri-cal|gow-col)");
                        std::process::exit(2);
                    }
                };
            }
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: datagen [--kind uni|zipf|bri-cal|gow-col] [--scale F] \
                     [--seed N] [--out FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    eprintln!(
        "generating {} at scale {scale} (seed {seed})...",
        kind.name()
    );
    let ssn = kind.build(scale, seed);
    eprintln!("  {}", DatasetStats::of(&ssn));
    save_ssn(&ssn, &out).expect("failed to write dataset");
    eprintln!("wrote {out}");
}
