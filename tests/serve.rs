//! Serving-layer contract tests: the work-stealing batch scheduler is
//! bit-identical to sequential and static-chunk execution at every
//! thread count, the serve loop preserves submission order, admission
//! control sheds expired and overloaded requests *without engine work*,
//! and the JSONL front-end turns malformed lines into in-order error
//! records instead of aborting the stream.

use gpssn::core::{
    serve, serve_jsonl, BatchSchedule, Completion, EngineConfig, GpSsnAnswer, GpSsnEngine,
    GpSsnError, GpSsnQuery, OverloadPolicy, QueryBudget, QueryOptions, QueryOutcome, ServeConfig,
    ServeRequest, Submission,
};
use gpssn::obs::{json, Obs};
use gpssn::ssn::{synthetic, SpatialSocialNetwork, SyntheticConfig};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn dataset() -> SpatialSocialNetwork {
    synthetic(&SyntheticConfig::uni().scaled(0.02), 42)
}

/// A cost-skewed workload: a few large-radius, large-group queries among
/// cheap small-radius ones — the distribution that makes static
/// chunking strand a worker.
fn skewed_queries(num_users: u32, n: usize) -> Vec<GpSsnQuery> {
    (0..n as u32)
        .map(|i| {
            let mut q = GpSsnQuery::with_defaults(i * 13 % num_users);
            if i % 7 == 0 {
                q.radius = 3.5;
                q.tau = 4;
            } else {
                q.radius = 0.8;
                q.tau = 2;
            }
            q
        })
        .collect()
}

/// Bitwise answer equality: distances compared by bit pattern, not
/// tolerance.
fn assert_same_answer(a: &Option<GpSsnAnswer>, b: &Option<GpSsnAnswer>, what: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.users, y.users, "{what}: group differs");
            assert_eq!(x.pois, y.pois, "{what}: POIs differ");
            assert_eq!(
                x.maxdist.to_bits(),
                y.maxdist.to_bits(),
                "{what}: maxdist not bit-identical ({} vs {})",
                x.maxdist,
                y.maxdist
            );
        }
        _ => panic!("{what}: one side has an answer, the other does not"),
    }
}

fn assert_same_outcome(
    a: &Result<QueryOutcome, GpSsnError>,
    b: &Result<QueryOutcome, GpSsnError>,
    what: &str,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(
                x.completion.rung(),
                y.completion.rung(),
                "{what}: completion class differs"
            );
            if let (Completion::TruncatedWithGap(gx), Completion::TruncatedWithGap(gy)) =
                (&x.completion, &y.completion)
            {
                assert_eq!(gx.to_bits(), gy.to_bits(), "{what}: gap differs");
            }
            assert_same_answer(&x.answer, &y.answer, what);
        }
        (Err(x), Err(y)) => {
            assert_eq!(x.to_string(), y.to_string(), "{what}: errors differ")
        }
        _ => panic!("{what}: Ok on one side, Err on the other"),
    }
}

/// The tentpole equivalence: work-stealing and static chunking produce
/// bit-identical per-slot results to the sequential engine at every
/// thread count, including 7 (more workers than a chunk boundary
/// divides evenly) and 0 (auto-detect).
#[test]
fn batch_schedules_bit_identical_across_thread_counts() {
    let ssn = dataset();
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
    let queries = skewed_queries(ssn.social().num_users() as u32, 24);
    let opts = QueryOptions::default();
    let budget = QueryBudget::unlimited();

    let sequential: Vec<_> = queries
        .iter()
        .map(|q| engine.try_query_with_options(q, &opts, &budget))
        .collect();

    for threads in [1usize, 2, 7, 0] {
        for schedule in [BatchSchedule::WorkStealing, BatchSchedule::StaticChunk] {
            let got = engine.try_query_batch_scheduled(&queries, threads, &opts, &budget, schedule);
            assert_eq!(got.len(), queries.len());
            for (i, (g, s)) in got.iter().zip(&sequential).enumerate() {
                assert_same_outcome(g, s, &format!("{schedule:?} threads={threads} slot {i}"));
            }
        }
    }
}

/// `serve` delivers every response in submission order, streaming, with
/// answers bit-identical to the sequential engine.
#[test]
fn serve_preserves_submission_order_and_answers() {
    let ssn = dataset();
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
    let queries = skewed_queries(ssn.social().num_users() as u32, 16);
    let opts = QueryOptions::default();
    let budget = QueryBudget::unlimited();
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| engine.try_query_with_options(q, &opts, &budget))
        .collect();

    let cfg = ServeConfig {
        threads: 4,
        queue_capacity: 2, // exercise backpressure on the submitter
        ..Default::default()
    };
    let responses = Mutex::new(Vec::new());
    let stats = serve(
        &engine,
        &cfg,
        queries.iter().enumerate().map(|(i, q)| {
            Submission::Request(ServeRequest {
                id: 100 + i as u64,
                query: q.clone(),
                budget: QueryBudget::unlimited(),
            })
        }),
        |resp| responses.lock().unwrap().push(resp),
    );
    let responses = responses.into_inner().unwrap();
    assert_eq!(stats.submitted, 16);
    assert_eq!(stats.served, 16);
    assert_eq!(responses.len(), 16);
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(
            resp.id,
            100 + i as u64,
            "response {i} out of submission order"
        );
        assert_same_outcome(&resp.result, &sequential[i], &format!("serve slot {i}"));
    }
}

/// Requests whose deadline is already spent are shed before any engine
/// work: the typed `DeadlineExpired` comes back, the shed is metered,
/// and the engine's own counters stay at zero.
#[test]
fn expired_deadlines_shed_without_engine_work() {
    let ssn = dataset();
    let obs = Arc::new(Obs::with_metrics());
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            obs: Some(Arc::clone(&obs)),
            ..Default::default()
        },
    );
    let cfg = ServeConfig {
        threads: 2,
        ..Default::default()
    };
    let responses = Mutex::new(Vec::new());
    let stats = serve(
        &engine,
        &cfg,
        (0..5u64).map(|i| {
            Submission::Request(ServeRequest {
                id: i,
                query: GpSsnQuery::with_defaults(3),
                budget: QueryBudget {
                    deadline: Some(Duration::ZERO),
                    ..QueryBudget::unlimited()
                },
            })
        }),
        |resp| responses.lock().unwrap().push(resp),
    );
    let responses = responses.into_inner().unwrap();
    assert_eq!(responses.len(), 5);
    for resp in &responses {
        assert!(
            matches!(resp.result, Err(GpSsnError::DeadlineExpired)),
            "expected DeadlineExpired, got {:?}",
            resp.result
        );
    }
    assert_eq!(stats.shed_expired, 5);
    assert_eq!(stats.served, 0, "no request may reach the engine");

    let snap = obs.base_registry().snapshot();
    assert_eq!(
        snap.counter("gpssn_serve_shed_total", &[("reason", "expired")]),
        5
    );
    assert_eq!(snap.counter("gpssn_serve_served_total", &[]), 0);
    assert_eq!(
        snap.counter("gpssn_users_scanned_total", &[]),
        0,
        "engine pruning counters must stay untouched by shed requests"
    );
}

/// With a zero-capacity queue under the shedding policy every request
/// is rejected with the typed `Overloaded` error carrying the observed
/// depth and capacity.
#[test]
fn overloaded_queue_sheds_with_typed_error() {
    let ssn = dataset();
    let obs = Arc::new(Obs::with_metrics());
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            obs: Some(Arc::clone(&obs)),
            ..Default::default()
        },
    );
    let cfg = ServeConfig {
        threads: 1,
        queue_capacity: 0,
        overload: OverloadPolicy::Shed,
        ..Default::default()
    };
    let responses = Mutex::new(Vec::new());
    let stats = serve(
        &engine,
        &cfg,
        (0..4u64).map(|i| {
            Submission::Request(ServeRequest {
                id: i,
                query: GpSsnQuery::with_defaults(1),
                budget: QueryBudget::unlimited(),
            })
        }),
        |resp| responses.lock().unwrap().push(resp),
    );
    let responses = responses.into_inner().unwrap();
    assert_eq!(responses.len(), 4);
    for resp in &responses {
        match &resp.result {
            Err(GpSsnError::Overloaded { depth, capacity }) => {
                assert_eq!((*depth, *capacity), (0, 0));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    assert_eq!(stats.shed_overloaded, 4);
    assert_eq!(stats.served, 0);
    assert_eq!(
        obs.base_registry()
            .snapshot()
            .counter("gpssn_serve_shed_total", &[("reason", "overloaded")]),
        4
    );
}

/// The JSONL front-end: one response line per input line, in input
/// order; malformed lines become `invalid_query` error records
/// mid-stream and later lines still run.
#[test]
fn serve_jsonl_streams_and_survives_malformed_lines() {
    let ssn = dataset();
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
    let cfg = ServeConfig {
        threads: 2,
        ..Default::default()
    };
    let input = concat!(
        "{\"id\":10,\"user\":3,\"r\":1.5}\n",
        "this is not json\n",
        "{\"user\":5}\n",          // id defaults to line number (3)
        "{\"id\":13,\"tau\":2}\n", // missing required user
        "{\"id\":14,\"user\":7,\"timeout_ms\":0}\n", // dead on arrival
    );
    let mut out = Vec::new();
    let stats = serve_jsonl(&engine, &cfg, input.as_bytes(), &mut out).expect("no I/O errors");
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.rejected, 2, "two malformed lines");
    assert_eq!(stats.shed_expired, 1);
    assert_eq!(stats.served, 2);

    let text = String::from_utf8(out).expect("output is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "one response line per input line");
    let parsed: Vec<json::Value> = lines
        .iter()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad response line {l:?}: {e}")))
        .collect();
    let field = |i: usize, key: &str| -> String {
        parsed[i]
            .get(key)
            .and_then(|v| {
                v.as_str()
                    .map(str::to_string)
                    .or_else(|| v.as_f64().map(|n| n.to_string()))
            })
            .unwrap_or_else(|| panic!("line {i} missing {key}: {}", lines[i]))
    };
    assert_eq!(field(0, "id"), "10");
    assert_eq!(field(0, "status"), "ok");
    assert_eq!(field(1, "id"), "2");
    assert_eq!(field(1, "code"), "invalid_query");
    assert_eq!(field(2, "id"), "3", "id defaults to the line number");
    assert_eq!(field(2, "status"), "ok");
    assert_eq!(field(3, "code"), "invalid_query");
    assert_eq!(field(4, "id"), "14");
    assert_eq!(field(4, "code"), "deadline_expired");
}
