//! PR 2 acceptance properties: parallel center refinement and the
//! cross-query distance cache are *bit-identical* to the sequential,
//! uncached engine — same users, same POIs, same `maxdist` down to the
//! last mantissa bit — across a randomized ≥200-query corpus. Eviction
//! pressure (a cache too small to hold anything for long) must also
//! change nothing: a hit only ever returns what the miss path would
//! have recomputed.

use gpssn::core::algorithm::{DistanceBackend, EngineConfig, QueryOptions};
use gpssn::core::{DistanceCacheConfig, GpSsnAnswer, GpSsnEngine, GpSsnQuery};
use gpssn::index::{PivotSelectConfig, SocialIndexConfig};
use gpssn::ssn::{synthetic, SpatialSocialNetwork, SyntheticConfig};

fn small_cfg(seed: u64, cache: Option<DistanceCacheConfig>) -> EngineConfig {
    EngineConfig {
        num_road_pivots: 3,
        num_social_pivots: 3,
        social_index: SocialIndexConfig {
            leaf_size: 8,
            fanout: 3,
            ..Default::default()
        },
        pivot_select: PivotSelectConfig {
            seed,
            ..Default::default()
        },
        distance_cache: cache,
        ..Default::default()
    }
}

/// The query corpus: a parameter grid over a few seeds, ≥200 queries in
/// total (mirrors the equivalence suite's shape so both feasible and
/// infeasible cases are exercised).
fn corpus(ssn: &SpatialSocialNetwork, seed: u64) -> Vec<GpSsnQuery> {
    let m = ssn.social().num_users() as u32;
    let mut qs = Vec::new();
    for (qi, &tau) in [1usize, 2, 3].iter().enumerate() {
        for (gi, &gamma) in [0.2, 0.5, 0.8].iter().enumerate() {
            for &theta in &[0.2, 0.6] {
                for &radius in &[1.0, 2.0, 3.0] {
                    let user = (seed as u32 + qi as u32 * 7 + gi as u32 * 3) % m;
                    qs.push(GpSsnQuery {
                        user,
                        tau,
                        gamma,
                        theta,
                        radius,
                    });
                }
            }
        }
    }
    qs
}

/// Bitwise answer comparison: users, POIs, and the exact bit pattern of
/// the objective. `f64::to_bits` makes "equal up to rounding" failures
/// impossible to paper over.
fn assert_bit_identical(a: &Option<GpSsnAnswer>, b: &Option<GpSsnAnswer>, what: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.users, y.users, "{what}: user groups differ");
            assert_eq!(x.pois, y.pois, "{what}: POI sets differ");
            assert_eq!(
                x.maxdist.to_bits(),
                y.maxdist.to_bits(),
                "{what}: maxdist bits differ ({} vs {})",
                x.maxdist,
                y.maxdist
            );
        }
        _ => panic!(
            "{what}: feasibility differs ({:?} vs {:?})",
            a.as_ref().map(|x| x.maxdist),
            b.as_ref().map(|x| x.maxdist)
        ),
    }
}

fn threads_opts(threads: usize) -> QueryOptions {
    QueryOptions {
        refine_threads: threads,
        ..Default::default()
    }
}

fn backend_opts(backend: DistanceBackend) -> QueryOptions {
    QueryOptions {
        distance_backend: backend,
        ..Default::default()
    }
}

#[test]
fn ch_backend_is_bit_identical_to_dijkstra() {
    let mut checked = 0usize;
    let mut answered = 0usize;
    let mut ch_engaged = 0usize;
    for seed in 0..4u64 {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.004), seed);
        let engine = GpSsnEngine::build(&ssn, small_cfg(seed, None));
        for q in corpus(&ssn, seed) {
            let dij = engine.query_with_options(&q, &backend_opts(DistanceBackend::Dijkstra));
            let ch = engine.query_with_options(&q, &backend_opts(DistanceBackend::Ch));
            assert_bit_identical(&dij.answer, &ch.answer, "CH backend vs Dijkstra");
            assert_eq!(
                dij.metrics.ch_batches, 0,
                "Dijkstra backend must not touch the CH oracle"
            );
            ch_engaged += (ch.metrics.ch_batches > 0) as usize;
            checked += 1;
            answered += dij.answer.is_some() as usize;
        }
    }
    assert!(checked >= 200, "stress corpus too small: {checked}");
    assert!(answered >= 10, "too few feasible cases: {answered}");
    assert!(
        ch_engaged >= 10,
        "the CH oracle barely engaged ({ch_engaged} queries) — the test proves nothing"
    );
}

#[test]
fn ch_less_index_falls_back_to_dijkstra() {
    // An engine whose road index skipped CH construction still serves
    // queries under the default `DistanceBackend::Ch`: the backend
    // degrades to Dijkstra silently and reports zero CH batches.
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.004), 7);
    let mut chless_cfg = small_cfg(7, None);
    chless_cfg.road_index.build_ch = false;
    let chless = GpSsnEngine::build(&ssn, chless_cfg);
    let full = GpSsnEngine::build(&ssn, small_cfg(7, None));
    for q in corpus(&ssn, 7) {
        let a = chless.query(&q);
        let b = full.query_with_options(&q, &backend_opts(DistanceBackend::Dijkstra));
        assert_bit_identical(&a.answer, &b.answer, "CH-less fallback vs Dijkstra");
        assert_eq!(
            a.metrics.ch_batches, 0,
            "a CH-less index cannot have served CH batches"
        );
    }
}

#[test]
fn parallel_refinement_is_bit_identical_to_sequential() {
    // Cache off so this test isolates the threading dimension.
    let mut checked = 0usize;
    let mut answered = 0usize;
    for seed in 0..4u64 {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.004), seed);
        let engine = GpSsnEngine::build(&ssn, small_cfg(seed, None));
        for q in corpus(&ssn, seed) {
            let seq = engine.query_with_options(&q, &threads_opts(1));
            let par4 = engine.query_with_options(&q, &threads_opts(4));
            let par_auto = engine.query_with_options(&q, &threads_opts(0));
            assert_bit_identical(&seq.answer, &par4.answer, "4 threads vs sequential");
            assert_bit_identical(&seq.answer, &par_auto.answer, "auto threads vs sequential");
            checked += 1;
            answered += seq.answer.is_some() as usize;
        }
    }
    assert!(checked >= 200, "stress corpus too small: {checked}");
    assert!(answered >= 10, "too few feasible cases: {answered}");
}

#[test]
fn cache_never_changes_answers() {
    for seed in 0..3u64 {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.004), seed);
        let cached =
            GpSsnEngine::build(&ssn, small_cfg(seed, Some(DistanceCacheConfig::default())));
        let uncached = GpSsnEngine::build(&ssn, small_cfg(seed, None));
        // Two passes over the corpus: the second runs against a warm
        // cache, so hits (not just misses) are compared against the
        // cache-free engine.
        for pass in 0..2 {
            for q in corpus(&ssn, seed) {
                let a = cached.query(&q);
                let b = uncached.query(&q);
                assert_bit_identical(&a.answer, &b.answer, "cached vs uncached");
                if pass == 1 {
                    // Warm pass: hits must actually be happening, or this
                    // test proves nothing about the hit path.
                    let c = a.metrics.cache;
                    assert!(
                        c.ball_hits + c.dist_hits > 0 || a.answer.is_none(),
                        "warm pass produced no cache hits for {q:?}: {c:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn eviction_pressure_never_changes_answers() {
    // A cache this small is evicting almost constantly; every lookup
    // pattern (miss, hit, hit-after-evict-and-recompute) must still
    // produce the bit pattern the uncached engine computes.
    let tiny = DistanceCacheConfig {
        ball_capacity: 2,
        dist_capacity: 8,
        shards: 1,
    };
    for seed in 0..3u64 {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.004), seed);
        let squeezed = GpSsnEngine::build(&ssn, small_cfg(seed, Some(tiny.clone())));
        let uncached = GpSsnEngine::build(&ssn, small_cfg(seed, None));
        for q in corpus(&ssn, seed) {
            let a = squeezed.query(&q);
            let b = uncached.query(&q);
            assert_bit_identical(&a.answer, &b.answer, "tiny cache vs uncached");
        }
    }
}

#[test]
fn parallel_and_cached_together_match_the_plain_engine() {
    // The full production configuration (cache on, 4 refinement
    // threads) against the simplest one (no cache, one thread).
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.004), 11);
    let fast = GpSsnEngine::build(&ssn, small_cfg(11, Some(DistanceCacheConfig::default())));
    let plain = GpSsnEngine::build(&ssn, small_cfg(11, None));
    for q in corpus(&ssn, 11) {
        let a = fast.query_with_options(&q, &threads_opts(4));
        let b = plain.query_with_options(&q, &threads_opts(1));
        assert_bit_identical(&a.answer, &b.answer, "parallel+cached vs plain");
    }
}

#[test]
fn repeated_queries_report_a_rising_hit_rate() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.004), 5);
    let engine = GpSsnEngine::build(&ssn, small_cfg(5, Some(DistanceCacheConfig::default())));
    let q = GpSsnQuery {
        user: 1,
        tau: 2,
        gamma: 0.3,
        theta: 0.2,
        radius: 3.0,
    };
    let cold = engine.query(&q);
    let warm = engine.query(&q);
    let (c, w) = (cold.metrics.cache, warm.metrics.cache);
    // The warm run re-asks exactly the cold run's questions, so every
    // ball and distance it needs is resident.
    assert!(
        w.ball_hits >= c.ball_hits && w.dist_hits >= c.dist_hits,
        "warm run lost hits: cold {c:?} warm {w:?}"
    );
    assert!(
        w.ball_hits + w.dist_hits > 0,
        "identical repeat query missed the cache entirely: {w:?}"
    );
    assert!(w.hit_rate() > 0.0, "hit rate not reported: {w:?}");
    assert_bit_identical(&cold.answer, &warm.answer, "warm repeat vs cold");
}
