//! Fault-tolerant serving: typed errors, panic-isolated batches, and
//! budgeted anytime answers, exercised through the `try_*` API.
//!
//! The fault-injection tests arm a global hook
//! ([`gpssn::core::refinement::test_hooks::PANIC_ON_USER`]); they
//! serialize on a local mutex and only ever poison user ids 5 and 7, so
//! every other test in this binary must stick to users `<= 3`.

use gpssn::core::query::check_answer;
use gpssn::core::refinement::test_hooks;
use gpssn::core::{
    try_exact_baseline, Completion, EngineConfig, GpSsnEngine, GpSsnError, GpSsnQuery, QueryBudget,
};
use gpssn::index::SocialIndexConfig;
use gpssn::ssn::{synthetic, SpatialSocialNetwork, SyntheticConfig};
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::Duration;

fn small_engine(ssn: &SpatialSocialNetwork) -> GpSsnEngine<'_> {
    let cfg = EngineConfig {
        num_road_pivots: 3,
        num_social_pivots: 3,
        social_index: SocialIndexConfig {
            leaf_size: 16,
            fanout: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    GpSsnEngine::build(ssn, cfg)
}

/// Serializes the tests that arm the global fault-injection hook.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Disarms the hook on drop, even when an assertion fails mid-test.
struct HookGuard;

impl HookGuard {
    fn arm(user: u32) -> Self {
        test_hooks::PANIC_ON_USER.store(user, Ordering::SeqCst);
        HookGuard
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        test_hooks::PANIC_ON_USER.store(u32::MAX, Ordering::SeqCst);
    }
}

#[test]
fn typed_errors_for_invalid_inputs() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
    let engine = small_engine(&ssn);
    let unlimited = QueryBudget::unlimited();
    let ok = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 3.0,
    };

    let bad_tau = GpSsnQuery {
        tau: 0,
        ..ok.clone()
    };
    assert!(matches!(
        engine.try_query(&bad_tau, &unlimited),
        Err(GpSsnError::InvalidQuery(_))
    ));

    let bad_user = GpSsnQuery {
        user: u32::MAX - 1,
        ..ok.clone()
    };
    assert!(matches!(
        engine.try_query(&bad_user, &unlimited),
        Err(GpSsnError::UnknownUser { .. })
    ));

    let bad_radius = GpSsnQuery {
        radius: 1e9,
        ..ok.clone()
    };
    match engine.try_query(&bad_radius, &unlimited) {
        Err(GpSsnError::RadiusOutOfIndexRange {
            radius,
            r_min,
            r_max,
        }) => {
            assert_eq!(radius, 1e9);
            assert!(r_min <= r_max);
        }
        other => panic!("expected RadiusOutOfIndexRange, got {other:?}"),
    }

    let bad_tau_pop = GpSsnQuery {
        tau: ssn.social().num_users() + 1,
        ..ok.clone()
    };
    assert!(matches!(
        engine.try_query(&bad_tau_pop, &unlimited),
        Err(GpSsnError::Infeasible { .. })
    ));

    // Errors display as a single line (the CLI prints them on stderr).
    for err in [
        engine.try_query(&bad_tau, &unlimited).unwrap_err(),
        engine.try_query(&bad_radius, &unlimited).unwrap_err(),
    ] {
        assert!(!format!("{err}").contains('\n'));
    }

    // A valid query still succeeds exactly.
    let out = engine.try_query(&ok, &unlimited).expect("valid query");
    assert!(matches!(out.completion, Completion::Exact));
}

#[test]
fn poisoned_query_is_isolated_in_batch() {
    let _serial = HOOK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 41);
    let engine = small_engine(&ssn);
    let mk = |u: u32| GpSsnQuery {
        user: u,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 2.5,
    };
    let queries: Vec<GpSsnQuery> = [0u32, 1, 5, 2, 5, 3].into_iter().map(mk).collect();
    let unlimited = QueryBudget::unlimited();

    // Ground truth with the hook disarmed; the poisoned user's own query
    // must reach refinement, otherwise the injected fault never fires.
    let clean = engine.try_query_batch(&queries, 2, &unlimited);
    assert!(clean.iter().all(|r| r.is_ok()));
    assert!(
        clean[2].as_ref().unwrap().answer.is_some(),
        "fixture: user 5 must have an answer so refinement runs"
    );

    let _guard = HookGuard::arm(5);
    for threads in [0usize, 1, 3] {
        let poisoned = engine.try_query_batch(&queries, threads, &unlimited);
        assert_eq!(poisoned.len(), queries.len());
        for (i, (slot, truth)) in poisoned.iter().zip(clean.iter()).enumerate() {
            if queries[i].user == 5 {
                match slot {
                    Err(GpSsnError::Internal(msg)) => {
                        assert!(msg.contains("test hook"), "unexpected payload: {msg}")
                    }
                    other => panic!("slot {i} should be Err(Internal), got {other:?}"),
                }
            } else {
                let (got, want) = (slot.as_ref().unwrap(), truth.as_ref().unwrap());
                assert_eq!(
                    got.answer
                        .as_ref()
                        .map(|a| (a.users.clone(), a.pois.clone())),
                    want.answer
                        .as_ref()
                        .map(|a| (a.users.clone(), a.pois.clone())),
                    "healthy slot {i} diverged next to a poisoned one"
                );
            }
        }
    }
}

#[test]
fn page_cache_survives_poisoned_batch() {
    let _serial = HOOK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 41);
    let cfg = EngineConfig {
        num_road_pivots: 3,
        num_social_pivots: 3,
        social_index: SocialIndexConfig {
            leaf_size: 16,
            fanout: 4,
            ..Default::default()
        },
        page_cache_capacity: Some(64),
        ..Default::default()
    };
    let engine = GpSsnEngine::build(&ssn, cfg);
    let mk = |u: u32| GpSsnQuery {
        user: u,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 2.5,
    };
    let queries: Vec<GpSsnQuery> = [7u32, 0, 7, 1].into_iter().map(mk).collect();
    {
        let _guard = HookGuard::arm(7);
        let results = engine.try_query_batch(&queries, 2, &QueryBudget::unlimited());
        assert!(results[1].is_ok() && results[3].is_ok());
    }
    // The engine must keep serving after the injected faults (no poisoned
    // page-cache lock cascading into later queries).
    let after = engine
        .try_query(&mk(0), &QueryBudget::unlimited())
        .expect("engine still serves");
    assert!(matches!(after.completion, Completion::Exact));
}

#[test]
fn batch_thread_ergonomics() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 41);
    let engine = small_engine(&ssn);
    let queries: Vec<GpSsnQuery> = (0..3u32)
        .map(|u| GpSsnQuery {
            user: u,
            tau: 2,
            gamma: 0.3,
            theta: 0.3,
            radius: 2.5,
        })
        .collect();
    let sequential = engine.query_batch(&queries, 1);
    // threads = 0 (auto) and an oversized pool are both clamped, not a
    // panic; answers are identical in input order.
    for threads in [0usize, 64] {
        let batch = engine.query_batch(&queries, threads);
        assert_eq!(batch.len(), sequential.len());
        for (s, p) in sequential.iter().zip(batch.iter()) {
            assert_eq!(
                s.answer.as_ref().map(|a| (a.users.clone(), a.pois.clone())),
                p.answer.as_ref().map(|a| (a.users.clone(), a.pois.clone()))
            );
        }
    }
    assert!(engine.query_batch(&[], 0).is_empty());
}

#[test]
fn budget_trip_degrades_to_anytime_answer() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
    let engine = small_engine(&ssn);
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 3.0,
    };
    let unlimited = engine.try_query(&q, &QueryBudget::unlimited()).unwrap();
    assert!(matches!(unlimited.completion, Completion::Exact));
    let exact = unlimited
        .answer
        .as_ref()
        .expect("fixture query must have an answer");
    let total_groups = unlimited.metrics.groups_enumerated;
    assert!(
        total_groups > 2,
        "fixture too small to truncate meaningfully"
    );

    let mut saw_truncated = false;
    let mut saw_failed = false;
    for max_groups in 1..=total_groups {
        let budget = QueryBudget {
            max_groups_enumerated: Some(max_groups),
            ..Default::default()
        };
        let out = engine
            .try_query(&q, &budget)
            .expect("budgeted queries still return Ok");
        match out.completion {
            Completion::Exact => {
                let ans = out
                    .answer
                    .as_ref()
                    .expect("exact completion must match unlimited");
                assert!(
                    (ans.maxdist - exact.maxdist).abs() < 1e-9,
                    "exact-under-budget diverged: {} vs {}",
                    ans.maxdist,
                    exact.maxdist
                );
            }
            Completion::TruncatedWithGap(gap) => {
                saw_truncated = true;
                assert!(gap >= 0.0 && !gap.is_nan());
                let ans = out
                    .answer
                    .as_ref()
                    .expect("truncated completion carries an answer");
                check_answer(&ssn, &q, ans).expect("anytime answer violates Definition 5");
                // The answer is verified, so it cannot beat the optimum…
                assert!(ans.maxdist + 1e-9 >= exact.maxdist);
                // …and the gap bound must contain the optimum.
                assert!(
                    exact.maxdist >= ans.maxdist - gap - 1e-9,
                    "optimum {} below the gap window [{}, {}]",
                    exact.maxdist,
                    ans.maxdist - gap,
                    ans.maxdist
                );
            }
            Completion::Failed(err) => {
                saw_failed = true;
                assert!(out.answer.is_none());
                assert!(matches!(
                    err,
                    GpSsnError::BudgetExhausted { .. } | GpSsnError::DeadlineExceeded
                ));
            }
            Completion::DegradedSampling => {
                panic!("sampling rescue requires the Ladder policy, not the default")
            }
        }
    }
    assert!(saw_failed, "a 1-group budget should fail");
    assert!(
        saw_truncated,
        "sweep never produced an anytime answer with a gap"
    );
}

#[test]
fn pops_budget_of_one_fails_cleanly() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
    let engine = small_engine(&ssn);
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 3.0,
    };
    let budget = QueryBudget {
        max_heap_pops: Some(1),
        ..Default::default()
    };
    let out = engine
        .try_query(&q, &budget)
        .expect("trips degrade, never Err");
    match out.completion {
        Completion::Failed(GpSsnError::BudgetExhausted { resource, .. }) => {
            assert_eq!(resource, "heap pops")
        }
        other => panic!("expected a heap-pop budget failure, got {other:?}"),
    }
    assert!(out.answer.is_none());
    assert!(out.metrics.heap_pops <= 1);
}

#[test]
fn zero_deadline_trips_without_panicking() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
    let engine = small_engine(&ssn);
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 3.0,
    };
    let out = engine
        .try_query(&q, &QueryBudget::with_deadline(Duration::ZERO))
        .expect("deadline trips degrade, never Err");
    match out.completion {
        Completion::Exact => {} // finished inside the first check period
        Completion::TruncatedWithGap(gap) => assert!(gap >= 0.0),
        Completion::Failed(err) => {
            assert!(matches!(err, GpSsnError::DeadlineExceeded));
            assert!(out.answer.is_none());
        }
        Completion::DegradedSampling => {
            panic!("sampling rescue requires the Ladder policy, not the default")
        }
    }
}

#[test]
fn budgeted_baseline_returns_typed_error() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 3.0,
    };
    let budget = QueryBudget {
        max_groups_enumerated: Some(1),
        ..Default::default()
    };
    assert!(matches!(
        try_exact_baseline(&ssn, &q, &budget),
        Err(GpSsnError::BudgetExhausted { .. })
    ));
    assert!(try_exact_baseline(&ssn, &q, &QueryBudget::unlimited()).is_ok());
}

#[test]
fn top_k_under_budget_reports_completion() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
    let engine = small_engine(&ssn);
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 3.0,
    };
    let full = engine
        .try_query_top_k(&q, 3, &QueryBudget::unlimited())
        .unwrap();
    assert!(matches!(full.completion, Completion::Exact));
    let starved = engine
        .try_query_top_k(
            &q,
            3,
            &QueryBudget {
                max_heap_pops: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
    match starved.completion {
        Completion::Exact => panic!("one pop cannot complete a top-k traversal"),
        Completion::TruncatedWithGap(_) | Completion::Failed(_) => {}
        Completion::DegradedSampling => {
            panic!("top-k has no sampling rung")
        }
    }
    assert!(matches!(
        engine.try_query_top_k(&q, 0, &QueryBudget::unlimited()),
        Err(GpSsnError::InvalidQuery(_))
    ));
}
