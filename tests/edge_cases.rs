//! Failure injection and boundary conditions: degenerate networks,
//! unreachable road components, boundary parameter values.

use gpssn::core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn::index::{PivotSelectConfig, SocialIndexConfig};
use gpssn::road::{NetworkPoint, Poi, PoiSet, RoadNetwork};
use gpssn::social::{InterestVector, SocialNetwork};
use gpssn::spatial::Point;
use gpssn::ssn::SpatialSocialNetwork;

fn tiny_engine_cfg() -> EngineConfig {
    EngineConfig {
        num_road_pivots: 1,
        num_social_pivots: 1,
        social_index: SocialIndexConfig { leaf_size: 4, fanout: 2, ..Default::default() },
        pivot_select: PivotSelectConfig { sample_pairs: 8, ..Default::default() },
        ..Default::default()
    }
}

/// Two-component road network: a west segment and an east segment with
/// no connection between them.
fn split_world() -> SpatialSocialNetwork {
    let locs = vec![
        Point::new(0.0, 0.0),
        Point::new(2.0, 0.0),
        Point::new(50.0, 0.0),
        Point::new(52.0, 0.0),
    ];
    let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (2, 3)]);
    let pois = PoiSet::new(
        &road,
        vec![
            Poi::new(NetworkPoint::new(&road, 0, 1.0), vec![0, 1]), // west
            Poi::new(NetworkPoint::new(&road, 1, 1.0), vec![0, 1]), // east
        ],
    );
    let iv = |w: [f64; 2]| InterestVector::new(w.to_vec());
    let social = SocialNetwork::new(
        vec![iv([0.9, 0.5]), iv([0.8, 0.6]), iv([0.7, 0.7])],
        &[(0, 1), (1, 2)],
    );
    let homes = vec![
        NetworkPoint::new(&road, 0, 0.0), // west
        NetworkPoint::new(&road, 0, 2.0), // west
        NetworkPoint::new(&road, 1, 0.0), // east!
    ];
    SpatialSocialNetwork::new(road, pois, social, homes)
}

#[test]
fn disconnected_road_components_do_not_panic() {
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    // Users 0 and 1 live west: a west POI works; user 2 lives east and
    // can never reach west POIs (infinite maxdist), so groups including
    // user 2 are never optimal.
    let q = GpSsnQuery { user: 0, tau: 2, gamma: 0.5, theta: 0.5, radius: 2.0 };
    let out = engine.query(&q);
    let ans = out.answer.expect("west pair is feasible");
    assert_eq!(ans.users, vec![0, 1]);
    assert!(ans.maxdist.is_finite());
}

#[test]
fn group_forced_across_components_is_infeasible_in_practice() {
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    // tau = 3 forces user 2 (east) into the group: every candidate ball
    // is unreachable for someone, so maxdist is infinite for all centers
    // and no finite answer should be produced.
    let q = GpSsnQuery { user: 0, tau: 3, gamma: 0.2, theta: 0.2, radius: 2.0 };
    if let Some(ans) = engine.query(&q).answer {
        assert!(
            !ans.maxdist.is_finite() || ans.maxdist > 1e9,
            "cross-component group got finite maxdist {}",
            ans.maxdist
        );
    }
}

#[test]
fn tau_larger_than_population_returns_none() {
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery { user: 0, tau: 10, gamma: 0.0, theta: 0.0, radius: 2.0 };
    assert!(engine.query(&q).answer.is_none());
}

#[test]
fn tau_one_is_a_solo_trip() {
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery { user: 2, tau: 1, gamma: 9.0, theta: 0.5, radius: 2.0 };
    let ans = engine.query(&q).answer.expect("solo trip east");
    assert_eq!(ans.users, vec![2]);
    assert!(ans.maxdist.is_finite());
}

#[test]
fn friendless_user_with_tau_two_returns_none() {
    let locs = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1)]);
    let pois = PoiSet::new(&road, vec![Poi::new(NetworkPoint::new(&road, 0, 0.5), vec![0])]);
    let social = SocialNetwork::new(
        vec![InterestVector::new(vec![1.0]), InterestVector::new(vec![1.0])],
        &[], // no friendships at all
    );
    let homes = vec![NetworkPoint::new(&road, 0, 0.0), NetworkPoint::new(&road, 0, 1.0)];
    let ssn = SpatialSocialNetwork::new(road, pois, social, homes);
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery { user: 0, tau: 2, gamma: 0.0, theta: 0.0, radius: 1.0 };
    assert!(engine.query(&q).answer.is_none());
}

#[test]
fn boundary_radii_are_accepted() {
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let cfg = gpssn::index::RoadIndexConfig::default();
    for radius in [cfg.r_min, cfg.r_max] {
        let q = GpSsnQuery { user: 0, tau: 1, gamma: 0.0, theta: 0.0, radius };
        let _ = engine.query(&q); // must not panic
    }
}

#[test]
fn empty_poi_set_yields_none() {
    let locs = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1)]);
    let pois = PoiSet::new(&road, vec![]);
    let social = SocialNetwork::new(
        vec![InterestVector::new(vec![1.0]), InterestVector::new(vec![1.0])],
        &[(0, 1)],
    );
    let homes = vec![NetworkPoint::new(&road, 0, 0.0), NetworkPoint::new(&road, 0, 1.0)];
    let ssn = SpatialSocialNetwork::new(road, pois, social, homes);
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery { user: 0, tau: 2, gamma: 0.0, theta: 0.0, radius: 1.0 };
    assert!(engine.query(&q).answer.is_none());
}

#[test]
fn colocated_users_and_pois_work() {
    // Everyone lives on the same spot; all POIs stacked on one point.
    let locs = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1)]);
    let spot = NetworkPoint::new(&road, 0, 0.5);
    let pois = PoiSet::new(
        &road,
        vec![Poi::new(spot, vec![0]), Poi::new(spot, vec![0])],
    );
    let social = SocialNetwork::new(
        vec![InterestVector::new(vec![1.0]), InterestVector::new(vec![1.0])],
        &[(0, 1)],
    );
    let homes = vec![spot, spot];
    let ssn = SpatialSocialNetwork::new(road, pois, social, homes);
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery { user: 0, tau: 2, gamma: 0.5, theta: 0.5, radius: 0.5 };
    let ans = engine.query(&q).answer.expect("trivially feasible");
    assert_eq!(ans.maxdist, 0.0);
}
