//! Failure injection and boundary conditions: degenerate networks,
//! unreachable road components, boundary parameter values — each checked
//! against the brute-force Baseline oracle where one exists.

use gpssn::core::{
    exact_baseline, Completion, EngineConfig, GpSsnEngine, GpSsnError, GpSsnQuery, QueryBudget,
};
use gpssn::index::{PivotSelectConfig, SocialIndexConfig};
use gpssn::road::{NetworkPoint, Poi, PoiSet, RoadNetwork};
use gpssn::social::{InterestVector, SocialNetwork};
use gpssn::spatial::Point;
use gpssn::ssn::{synthetic, SpatialSocialNetwork, SyntheticConfig};

fn tiny_engine_cfg() -> EngineConfig {
    EngineConfig {
        num_road_pivots: 1,
        num_social_pivots: 1,
        social_index: SocialIndexConfig {
            leaf_size: 4,
            fanout: 2,
            ..Default::default()
        },
        pivot_select: PivotSelectConfig {
            sample_pairs: 8,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Two-component road network: a west segment and an east segment with
/// no connection between them.
fn split_world() -> SpatialSocialNetwork {
    let locs = vec![
        Point::new(0.0, 0.0),
        Point::new(2.0, 0.0),
        Point::new(50.0, 0.0),
        Point::new(52.0, 0.0),
    ];
    let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1), (2, 3)]);
    let pois = PoiSet::new(
        &road,
        vec![
            Poi::new(NetworkPoint::new(&road, 0, 1.0), vec![0, 1]), // west
            Poi::new(NetworkPoint::new(&road, 1, 1.0), vec![0, 1]), // east
        ],
    );
    let iv = |w: [f64; 2]| InterestVector::new(w.to_vec());
    let social = SocialNetwork::new(
        vec![iv([0.9, 0.5]), iv([0.8, 0.6]), iv([0.7, 0.7])],
        &[(0, 1), (1, 2)],
    );
    let homes = vec![
        NetworkPoint::new(&road, 0, 0.0), // west
        NetworkPoint::new(&road, 0, 2.0), // west
        NetworkPoint::new(&road, 1, 0.0), // east!
    ];
    SpatialSocialNetwork::new(road, pois, social, homes)
}

#[test]
fn disconnected_road_components_do_not_panic() {
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    // Users 0 and 1 live west: a west POI works; user 2 lives east and
    // can never reach west POIs (infinite maxdist), so groups including
    // user 2 are never optimal.
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.5,
        theta: 0.5,
        radius: 2.0,
    };
    let out = engine.query(&q);
    let ans = out.answer.expect("west pair is feasible");
    assert_eq!(ans.users, vec![0, 1]);
    assert!(ans.maxdist.is_finite());
}

#[test]
fn group_forced_across_components_is_infeasible_in_practice() {
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    // tau = 3 forces user 2 (east) into the group: every candidate ball
    // is unreachable for someone, so maxdist is infinite for all centers
    // and no finite answer should be produced.
    let q = GpSsnQuery {
        user: 0,
        tau: 3,
        gamma: 0.2,
        theta: 0.2,
        radius: 2.0,
    };
    if let Some(ans) = engine.query(&q).answer {
        assert!(
            !ans.maxdist.is_finite() || ans.maxdist > 1e9,
            "cross-component group got finite maxdist {}",
            ans.maxdist
        );
    }
}

#[test]
fn tau_larger_than_population_returns_none() {
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery {
        user: 0,
        tau: 10,
        gamma: 0.0,
        theta: 0.0,
        radius: 2.0,
    };
    assert!(engine.query(&q).answer.is_none());
}

#[test]
fn tau_one_is_a_solo_trip() {
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery {
        user: 2,
        tau: 1,
        gamma: 9.0,
        theta: 0.5,
        radius: 2.0,
    };
    let ans = engine.query(&q).answer.expect("solo trip east");
    assert_eq!(ans.users, vec![2]);
    assert!(ans.maxdist.is_finite());
}

#[test]
fn friendless_user_with_tau_two_returns_none() {
    let locs = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1)]);
    let pois = PoiSet::new(
        &road,
        vec![Poi::new(NetworkPoint::new(&road, 0, 0.5), vec![0])],
    );
    let social = SocialNetwork::new(
        vec![
            InterestVector::new(vec![1.0]),
            InterestVector::new(vec![1.0]),
        ],
        &[], // no friendships at all
    );
    let homes = vec![
        NetworkPoint::new(&road, 0, 0.0),
        NetworkPoint::new(&road, 0, 1.0),
    ];
    let ssn = SpatialSocialNetwork::new(road, pois, social, homes);
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.0,
        theta: 0.0,
        radius: 1.0,
    };
    assert!(engine.query(&q).answer.is_none());
}

#[test]
fn boundary_radii_are_accepted() {
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let cfg = gpssn::index::RoadIndexConfig::default();
    for radius in [cfg.r_min, cfg.r_max] {
        let q = GpSsnQuery {
            user: 0,
            tau: 1,
            gamma: 0.0,
            theta: 0.0,
            radius,
        };
        let _ = engine.query(&q); // must not panic
    }
}

#[test]
fn statically_infeasible_queries_return_typed_errors() {
    let ssn = split_world(); // 3 users; user layout in `split_world`
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let unlimited = QueryBudget::unlimited();

    // τ above the population: detectable before any traversal.
    let q = GpSsnQuery {
        user: 0,
        tau: 10,
        gamma: 0.0,
        theta: 0.0,
        radius: 2.0,
    };
    assert!(matches!(
        engine.try_query(&q, &unlimited),
        Err(GpSsnError::Infeasible { .. })
    ));
    // The oracle agrees there is nothing to find.
    assert!(exact_baseline(&ssn, &q).is_none());

    // Friendless query user with τ >= 2: no connected group can exist.
    let locs = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1)]);
    let pois = PoiSet::new(
        &road,
        vec![Poi::new(NetworkPoint::new(&road, 0, 0.5), vec![0])],
    );
    let social = SocialNetwork::new(
        vec![
            InterestVector::new(vec![1.0]),
            InterestVector::new(vec![1.0]),
        ],
        &[],
    );
    let homes = vec![
        NetworkPoint::new(&road, 0, 0.0),
        NetworkPoint::new(&road, 0, 1.0),
    ];
    let lonely = SpatialSocialNetwork::new(road, pois, social, homes);
    let lonely_engine = GpSsnEngine::build(&lonely, tiny_engine_cfg());
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.0,
        theta: 0.0,
        radius: 1.0,
    };
    assert!(matches!(
        lonely_engine.try_query(&q, &unlimited),
        Err(GpSsnError::Infeasible { .. })
    ));
    assert!(exact_baseline(&lonely, &q).is_none());
}

#[test]
fn unachievable_gamma_is_exactly_none_like_brute_force() {
    // γ above any attainable pairwise interest score is only discovered
    // during the search, so it is an exact empty answer, not an error.
    let ssn = split_world();
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 100.0,
        theta: 0.0,
        radius: 2.0,
    };
    let out = engine
        .try_query(&q, &QueryBudget::unlimited())
        .expect("valid, just empty");
    assert!(out.answer.is_none());
    assert!(matches!(out.completion, Completion::Exact));
    assert!(exact_baseline(&ssn, &q).is_none());
}

#[test]
fn boundary_radii_match_brute_force() {
    // r exactly at the index's r_min / r_max is *inside* the supported
    // range: no RadiusOutOfIndexRange, and the answer matches the oracle.
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 23);
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            num_road_pivots: 3,
            num_social_pivots: 3,
            social_index: SocialIndexConfig {
                leaf_size: 16,
                fanout: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let cfg = gpssn::index::RoadIndexConfig::default();
    for radius in [cfg.r_min, cfg.r_max] {
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.3,
            theta: 0.2,
            radius,
        };
        let out = engine
            .try_query(&q, &QueryBudget::unlimited())
            .expect("boundary radius is valid");
        assert!(matches!(out.completion, Completion::Exact));
        let oracle = exact_baseline(&ssn, &q);
        match (&out.answer, &oracle) {
            (Some(a), Some(b)) => assert!(
                (a.maxdist - b.maxdist).abs() < 1e-9,
                "engine {} vs oracle {} at r = {radius}",
                a.maxdist,
                b.maxdist
            ),
            (None, None) => {}
            other => panic!("engine and oracle disagree at r = {radius}: {other:?}"),
        }
    }
    // One epsilon outside either end is a typed radius error.
    for radius in [cfg.r_min * 0.99, cfg.r_max * 1.01] {
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.3,
            theta: 0.2,
            radius,
        };
        assert!(matches!(
            engine.try_query(&q, &QueryBudget::unlimited()),
            Err(GpSsnError::RadiusOutOfIndexRange { .. })
        ));
    }
}

#[test]
fn empty_poi_set_yields_none() {
    let locs = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1)]);
    let pois = PoiSet::new(&road, vec![]);
    let social = SocialNetwork::new(
        vec![
            InterestVector::new(vec![1.0]),
            InterestVector::new(vec![1.0]),
        ],
        &[(0, 1)],
    );
    let homes = vec![
        NetworkPoint::new(&road, 0, 0.0),
        NetworkPoint::new(&road, 0, 1.0),
    ];
    let ssn = SpatialSocialNetwork::new(road, pois, social, homes);
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.0,
        theta: 0.0,
        radius: 1.0,
    };
    assert!(engine.query(&q).answer.is_none());
}

#[test]
fn colocated_users_and_pois_work() {
    // Everyone lives on the same spot; all POIs stacked on one point.
    let locs = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    let road = RoadNetwork::from_euclidean_edges(locs, &[(0, 1)]);
    let spot = NetworkPoint::new(&road, 0, 0.5);
    let pois = PoiSet::new(
        &road,
        vec![Poi::new(spot, vec![0]), Poi::new(spot, vec![0])],
    );
    let social = SocialNetwork::new(
        vec![
            InterestVector::new(vec![1.0]),
            InterestVector::new(vec![1.0]),
        ],
        &[(0, 1)],
    );
    let homes = vec![spot, spot];
    let ssn = SpatialSocialNetwork::new(road, pois, social, homes);
    let engine = GpSsnEngine::build(&ssn, tiny_engine_cfg());
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.5,
        theta: 0.5,
        radius: 0.5,
    };
    let ans = engine.query(&q).answer.expect("trivially feasible");
    assert_eq!(ans.maxdist, 0.0);
}
