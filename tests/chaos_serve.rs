//! Chaos through the serving layer: a seeded fault plan fires across
//! every registered fail-point site — including the serve layer's own
//! `serve::queue_full` admission fault — while a request stream runs
//! through `serve` under the degradation ladder. The serving contract:
//!
//! * every submission gets exactly one response, in submission order,
//! * no panic escapes the serve loop,
//! * fault-shed requests carry the typed `Overloaded` error,
//! * `Exact` answers are bitwise-equal to the fault-free run.
//!
//! The fault plan is process-global, so this lives in its own
//! integration-test file with a single test function.
#![cfg(feature = "failpoints")]

use gpssn::core::{
    serve, Completion, DegradationPolicy, EngineConfig, GpSsnEngine, GpSsnError, GpSsnQuery,
    QueryBudget, QueryOptions, ServeConfig, ServeRequest, Submission,
};
use gpssn::failpoint::{install, FaultPlan};
use gpssn::ssn::{synthetic, SyntheticConfig};
use std::sync::Mutex;

#[test]
fn chaos_stream_through_serve_holds_the_contract() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.02), 42);
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
    let num_users = ssn.social().num_users() as u32;
    let queries: Vec<GpSsnQuery> = (0..32u32)
        .map(|i| {
            let mut q = GpSsnQuery::with_defaults(i * 13 % num_users);
            q.radius = if i % 7 == 0 { 3.0 } else { 0.8 };
            q
        })
        .collect();
    let opts = QueryOptions {
        degradation: DegradationPolicy::Ladder,
        ..Default::default()
    };
    let budget = QueryBudget::unlimited();
    let fault_free: Vec<_> = queries
        .iter()
        .map(|q| engine.try_query_with_options(q, &opts, &budget))
        .collect();

    let cfg = ServeConfig {
        threads: 2,
        options: opts,
        ..Default::default()
    };
    for seed in [7u64, 1234, 999_983] {
        let _plan = install(FaultPlan::uniform(seed, 0.05));
        let responses = Mutex::new(Vec::new());
        let stats = serve(
            &engine,
            &cfg,
            queries.iter().enumerate().map(|(i, q)| {
                Submission::Request(ServeRequest {
                    id: i as u64,
                    query: q.clone(),
                    budget: QueryBudget::unlimited(),
                })
            }),
            |resp| responses.lock().unwrap().push(resp),
        );
        let responses = responses.into_inner().unwrap();
        assert_eq!(responses.len(), 32, "seed {seed}: a response per request");
        assert_eq!(stats.submitted, 32);
        assert_eq!(
            stats.served + stats.shed_overloaded + stats.shed_expired,
            32,
            "seed {seed}: every request accounted for"
        );
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.id, i as u64, "seed {seed}: order violated at {i}");
            match &resp.result {
                Ok(out) => {
                    if let (Completion::Exact, Ok(base)) = (&out.completion, &fault_free[i]) {
                        if matches!(base.completion, Completion::Exact) {
                            match (&out.answer, &base.answer) {
                                (None, None) => {}
                                (Some(a), Some(b)) => {
                                    assert_eq!(a.users, b.users, "seed {seed} slot {i}");
                                    assert_eq!(a.pois, b.pois, "seed {seed} slot {i}");
                                    assert_eq!(
                                        a.maxdist.to_bits(),
                                        b.maxdist.to_bits(),
                                        "seed {seed} slot {i}: exact answer drifted under faults"
                                    );
                                }
                                _ => panic!("seed {seed} slot {i}: exact feasibility drifted"),
                            }
                        }
                    }
                }
                // The admission fault sheds with the typed error; the
                // ladder keeps everything else out of Err.
                Err(GpSsnError::Overloaded { .. }) => {}
                Err(other) => {
                    panic!("seed {seed} slot {i}: unexpected error {other}")
                }
            }
        }
    }
}
