//! Regression test for the scoped panic-capture hook.
//!
//! The original `install_panic_capture` installed a process-global hook
//! once and never removed it: the engine's hook outlived every batch
//! and silently pinned whatever hook the host application had installed
//! at first-batch time. `capture_scope` must instead (a) chain to the
//! previously installed hook while live, (b) support nesting via a
//! refcount, and (c) restore the previous hook when the last guard
//! drops.
//!
//! The panic hook is process-global state, so this whole scenario lives
//! in ONE test function in its OWN integration-test file (each
//! `tests/*.rs` is a separate process) — it can never race another
//! test's hook manipulation.

use gpssn::core::panic_capture::{capture_depth, capture_scope};
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};

static CUSTOM_HOOK_HITS: AtomicUsize = AtomicUsize::new(0);

fn boom(i: usize) {
    // Swallow stderr-free: the custom hook below replaces the default
    // printer for the whole test.
    let _ = panic::catch_unwind(|| panic!("scoped-hook test panic {i}"));
}

#[test]
fn capture_scope_chains_nests_and_restores() {
    assert_eq!(capture_depth(), 0, "no guard live at test start");

    // The "host application's" hook, installed before any capture.
    panic::set_hook(Box::new(|_| {
        CUSTOM_HOOK_HITS.fetch_add(1, Ordering::SeqCst);
    }));

    let outer = capture_scope();
    assert_eq!(capture_depth(), 1);
    {
        // Nested scope (a batch inside a serve session): shares the
        // installed hook, bumps the refcount only.
        let inner = capture_scope();
        assert_eq!(capture_depth(), 2);
        boom(1);
        assert_eq!(
            CUSTOM_HOOK_HITS.load(Ordering::SeqCst),
            1,
            "capture hook must chain to the previously installed hook"
        );
        drop(inner);
        assert_eq!(capture_depth(), 1, "inner drop must not uninstall");
    }
    boom(2);
    assert_eq!(
        CUSTOM_HOOK_HITS.load(Ordering::SeqCst),
        2,
        "chaining must survive an inner guard's drop"
    );
    drop(outer);
    assert_eq!(capture_depth(), 0, "last drop restores the previous hook");

    // After restoration the custom hook still works — the capture
    // machinery is gone, not the host's hook.
    boom(3);
    assert_eq!(
        CUSTOM_HOOK_HITS.load(Ordering::SeqCst),
        3,
        "previous hook must be restored (not dropped) after the last guard"
    );

    // Re-entry after full teardown installs cleanly again.
    let again = capture_scope();
    assert_eq!(capture_depth(), 1);
    boom(4);
    assert_eq!(CUSTOM_HOOK_HITS.load(Ordering::SeqCst), 4);
    drop(again);
    assert_eq!(capture_depth(), 0);

    let _ = panic::take_hook();
}
