//! End-to-end runs over realistically shaped (scaled-down) datasets:
//! answers validate against Definition 5, metrics behave sanely, and the
//! pruning powers land in plausible ranges.

use gpssn::core::algorithm::{EngineConfig, QueryOptions};
use gpssn::core::query::check_answer;
use gpssn::core::{GpSsnEngine, GpSsnQuery};
use gpssn::index::{PivotSelectConfig, SocialIndexConfig};
use gpssn::ssn::{DatasetKind, SpatialSocialNetwork};

fn engine_for(ssn: &SpatialSocialNetwork, seed: u64) -> GpSsnEngine<'_> {
    GpSsnEngine::build(
        ssn,
        EngineConfig {
            num_road_pivots: 4,
            num_social_pivots: 4,
            social_index: SocialIndexConfig {
                leaf_size: 32,
                fanout: 6,
                ..Default::default()
            },
            pivot_select: PivotSelectConfig {
                seed,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[test]
fn all_four_datasets_answer_and_validate() {
    for kind in DatasetKind::all() {
        let ssn = kind.build(0.02, 5);
        let engine = engine_for(&ssn, 5);
        let mut answered = 0;
        for user in [1u32, 7, 19] {
            let q = GpSsnQuery {
                user,
                tau: 3,
                gamma: 0.4,
                theta: 0.3,
                radius: 3.0,
            };
            let out = engine.query(&q);
            assert!(
                out.metrics.io_pages > 0,
                "{}: no pages touched",
                kind.name()
            );
            if let Some(ans) = &out.answer {
                answered += 1;
                check_answer(&ssn, &q, ans)
                    .unwrap_or_else(|e| panic!("{}: invalid answer: {e}", kind.name()));
                assert!(ans.users.contains(&user));
                assert_eq!(ans.users.len(), 3);
            }
        }
        // At least one of the three query users should find a group on
        // every dataset at these relaxed thresholds.
        assert!(answered >= 1, "{}: no query answered", kind.name());
    }
}

#[test]
fn pruning_powers_are_plausible() {
    let ssn = DatasetKind::Uni.build(0.03, 9);
    let engine = engine_for(&ssn, 9);
    let q = GpSsnQuery {
        user: 3,
        tau: 5,
        gamma: 0.5,
        theta: 0.5,
        radius: 2.0,
    };
    let out = engine.query_with_options(
        &q,
        &QueryOptions {
            collect_stats: true,
            ..Default::default()
        },
    );
    let s = &out.metrics.stats;
    // The paper reports very high combined pruning power; at minimum the
    // rules must fire and never exceed 100%.
    for p in [
        s.social_index_power(),
        s.social_object_power(),
        s.road_index_power(),
        s.road_object_power(),
        s.social_distance_power(),
        s.interest_power(),
        s.road_distance_power(),
        s.matching_power(),
        s.pair_power(),
    ] {
        assert!((0.0..=1.0).contains(&p), "power out of range: {p}");
    }
    let combined_social =
        (s.users_pruned_index + s.users_pruned_object) as f64 / s.users_total as f64;
    assert!(
        combined_social > 0.2,
        "social pruning suspiciously weak: {combined_social}"
    );
    assert!(
        s.pair_power() > 0.99,
        "pair pruning power too weak: {}",
        s.pair_power()
    );
}

#[test]
fn io_cost_scales_sublinearly_with_pois() {
    // Doubling the dataset should not double the traversal I/O (the
    // index prunes); allow generous slack for variance.
    let small = DatasetKind::Uni.build(0.02, 3);
    let large = DatasetKind::Uni.build(0.06, 3);
    let es = engine_for(&small, 3);
    let el = engine_for(&large, 3);
    let q = GpSsnQuery {
        user: 2,
        tau: 3,
        gamma: 0.5,
        theta: 0.5,
        radius: 2.0,
    };
    let io_s = es.query(&q).metrics.io_pages as f64;
    let io_l = el.query(&q).metrics.io_pages as f64;
    assert!(
        io_l < io_s * 6.0,
        "I/O grew superlinearly: {io_s} -> {io_l}"
    );
}

#[test]
fn repeated_queries_are_deterministic() {
    let ssn = DatasetKind::Zipf.build(0.02, 31);
    let engine = engine_for(&ssn, 31);
    let q = GpSsnQuery {
        user: 5,
        tau: 2,
        gamma: 0.4,
        theta: 0.4,
        radius: 2.5,
    };
    let a = engine.query(&q);
    let b = engine.query(&q);
    assert_eq!(a.answer, b.answer);
    assert_eq!(a.metrics.io_pages, b.metrics.io_pages);
}

#[test]
fn larger_tau_is_harder_or_equal() {
    let ssn = DatasetKind::Uni.build(0.03, 13);
    let engine = engine_for(&ssn, 13);
    let small = GpSsnQuery {
        user: 2,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 3.0,
    };
    let large = GpSsnQuery {
        tau: 6,
        ..small.clone()
    };
    let a = engine.query(&small);
    let b = engine.query(&large);
    if let (Some(sa), Some(sb)) = (&a.answer, &b.answer) {
        // A bigger group can never achieve a *smaller* optimal maxdist
        // when it must contain the smaller group's requirements... not
        // strictly true in general, but the objective is monotone in the
        // group for a fixed R-center set; allow equality with slack.
        assert!(
            sb.maxdist + 1e-9 >= sa.maxdist * 0.5,
            "unexpected objective collapse"
        );
    }
}
