//! Continuous-observability contract tests for the serve path: the
//! live HTTP telemetry endpoint answers all four routes while traffic
//! is in flight, tail-based trace sampling keeps every interesting
//! trace and exactly the configured head rate of the boring rest,
//! observability never perturbs answers (bit-identical on/off), and
//! the queue-depth gauge returns to zero after every drain.

use gpssn::core::{
    serve, serve_jsonl, EngineConfig, GpSsnEngine, GpSsnQuery, OverloadPolicy, QueryBudget,
    ServeConfig, ServeObs, ServeObsConfig, ServeRequest, Submission,
};
use gpssn::obs::{json, FlightConfig, Obs, ObsConfig, TailConfig};
use gpssn::ssn::{synthetic, SpatialSocialNetwork, SyntheticConfig};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Mutex, OnceLock};
use std::time::{Duration, Instant};

fn dataset() -> SpatialSocialNetwork {
    synthetic(&SyntheticConfig::uni().scaled(0.02), 42)
}

/// The shared engine for tests that don't need their own `Obs`:
/// building one per proptest case would dominate the suite's runtime.
fn shared_engine() -> &'static GpSsnEngine<'static> {
    static SSN: OnceLock<SpatialSocialNetwork> = OnceLock::new();
    static ENGINE: OnceLock<GpSsnEngine<'static>> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let ssn = SSN.get_or_init(dataset);
        GpSsnEngine::build(ssn, EngineConfig::default())
    })
}

fn request(id: u64, user: u32) -> Submission {
    Submission::Request(ServeRequest {
        id,
        query: GpSsnQuery::with_defaults(user),
        budget: QueryBudget::unlimited(),
    })
}

/// A minimal HTTP/1.1 client: one GET, connection closed, returns
/// (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    http_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn http_request(addr: SocketAddr, head: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(head.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The tentpole integration check: with `telemetry_addr` set, all four
/// routes answer — correctly — while the serve call is still running
/// and has traffic behind it, and unknown routes / non-GET methods get
/// proper error statuses.
#[test]
fn telemetry_endpoint_serves_all_routes_during_traffic() {
    let ssn = dataset();
    let obs = std::sync::Arc::new(Obs::with_metrics());
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            obs: Some(obs.clone()),
            ..Default::default()
        },
    );
    let tele = std::sync::Arc::new(ServeObs::default());
    let cfg = ServeConfig {
        threads: 2,
        telemetry: tele.clone(),
        telemetry_addr: Some("127.0.0.1:0".into()),
        ..Default::default()
    };

    // The submission iterator blocks on a channel after the first
    // batch, holding the serve call (and its listener) open while the
    // main thread scrapes.
    let (tx, rx) = mpsc::channel::<Submission>();
    let responses = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let serve_handle = scope.spawn(|| {
            serve(&engine, &cfg, rx, |resp| {
                responses.lock().unwrap().push(resp.id)
            })
        });
        for i in 0..8u64 {
            tx.send(request(i, (i as u32 * 3) % 40)).unwrap();
        }
        // Wait for the listener to bind and the batch to drain.
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Some(a) = tele.telemetry_addr() {
                break a;
            }
            assert!(Instant::now() < deadline, "listener never bound");
            std::thread::sleep(Duration::from_millis(5));
        };
        while responses.lock().unwrap().len() < 8 {
            assert!(Instant::now() < deadline, "first batch never drained");
            std::thread::sleep(Duration::from_millis(5));
        }

        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "metrics: {status}");
        assert!(
            body.contains("# TYPE gpssn_slo_attainment gauge"),
            "metrics body lacks SLO gauges:\n{body}"
        );
        assert!(body.contains("gpssn_serve_queue_depth"));
        // Every non-comment line must be `name{labels} value`.
        for line in body
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (_, value) = line.rsplit_once(' ').expect("prometheus line has a value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("non-numeric sample {line:?}"));
        }

        let (status, body) = http_get(addr, "/health");
        assert!(status.contains("200"), "health: {status}");
        let health = json::parse(body.trim()).expect("health is valid JSON");
        assert_eq!(
            health.get("status").and_then(|v| v.as_str()),
            Some("ok"),
            "healthy service reports ok: {body}"
        );
        assert_eq!(health.get("workers").and_then(|v| v.as_f64()), Some(2.0));

        let (status, body) = http_get(addr, "/slo");
        assert!(status.contains("200"), "slo: {status}");
        let slo = json::parse(body.trim()).expect("slo is valid JSON");
        assert_eq!(slo.get("total").and_then(|v| v.as_f64()), Some(8.0));

        let (status, body) = http_get(addr, "/flight");
        assert!(status.contains("200"), "flight: {status}");
        let flight = json::parse(body.trim()).expect("flight is valid JSON");
        let records = flight
            .get("records")
            .and_then(|v| v.as_array())
            .expect("flight has a records array");
        assert_eq!(records.len(), 8, "one flight record per served request");

        let (status, _) = http_get(addr, "/nope");
        assert!(status.contains("404"), "unknown route: {status}");
        let (status, _) = http_request(addr, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(status.contains("405"), "non-GET: {status}");

        // More traffic after the scrape: the endpoint never wedges the
        // drain.
        for i in 8..12u64 {
            tx.send(request(i, (i as u32 * 3) % 40)).unwrap();
        }
        drop(tx);
        let stats = serve_handle.join().unwrap();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.served, 12);
    });
    assert_eq!(responses.into_inner().unwrap().len(), 12);
    assert!(tele.listener_error().is_none());
    assert_eq!(tele.flight().len(), 12);
}

/// A telemetry address that cannot bind degrades to a warning surfaced
/// via [`ServeObs::listener_error`]; serving is unaffected.
#[test]
fn listener_bind_failure_is_surfaced_not_fatal() {
    let engine = shared_engine();
    let tele = std::sync::Arc::new(ServeObs::default());
    let cfg = ServeConfig {
        threads: 1,
        telemetry: tele.clone(),
        telemetry_addr: Some("definitely-not-an-address".into()),
        ..Default::default()
    };
    let served = Mutex::new(0u32);
    let stats = serve(
        engine,
        &cfg,
        (0..3u64).map(|i| request(i, i as u32)),
        |_| *served.lock().unwrap() += 1,
    );
    assert_eq!(stats.served, 3);
    assert_eq!(*served.lock().unwrap(), 3);
    let err = tele.listener_error().expect("bind failure is recorded");
    assert!(err.contains("definitely-not-an-address"), "{err}");
    assert!(tele.telemetry_addr().is_none());
}

/// The tail-sampling contract (the issue's acceptance bar): 100% of
/// interesting traces (errored requests here) survive, and *exactly*
/// one in `head_rate` of the boring rest — deterministically, whatever
/// the worker interleaving.
#[test]
fn tail_sampling_keeps_interesting_plus_exact_head_rate() {
    let ssn = dataset();
    let num_users = ssn.social().num_users() as u32;
    let obs = std::sync::Arc::new(Obs::new(ObsConfig {
        metrics: false,
        tracing: true,
        trace_capacity: 1 << 14,
    }));
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            obs: Some(obs.clone()),
            ..Default::default()
        },
    );
    let tele = std::sync::Arc::new(ServeObs::new(&ServeObsConfig {
        tail: TailConfig {
            // No query is "slow": only outcome and head sampling act.
            latency_threshold: Some(Duration::from_secs(3600)),
            head_rate: 5,
            seed: 0,
        },
        ..Default::default()
    }));
    let cfg = ServeConfig {
        threads: 3,
        telemetry: tele.clone(),
        ..Default::default()
    };
    // 20 boring successes interleaved with 5 unknown-user errors.
    let stats = serve(
        &engine,
        &cfg,
        (0..25u64).map(|i| {
            let user = if i % 5 == 4 {
                num_users + 1_000 // unknown → error → interesting
            } else {
                (i as u32 * 7) % num_users
            };
            request(i, user)
        }),
        |_| {},
    );
    assert_eq!(stats.served, 25);

    let (kept_outcome, kept_slow, kept_head, dropped) = tele.tail().stats();
    assert_eq!(kept_outcome, 5, "every errored trace is kept");
    assert_eq!(kept_slow, 0, "nothing beats a one-hour threshold");
    assert_eq!(
        kept_head, 4,
        "exactly 1-in-5 of the 20 boring queries survive"
    );
    assert_eq!(dropped, 16);

    // The committed traces — and only those — reached the trace sink.
    let roots = obs
        .tracer()
        .records()
        .iter()
        .filter(|r| r.name == "serve_request")
        .count();
    assert_eq!(roots, 9, "5 outcome-kept + 4 head-kept root spans");

    // The flight recorder saw everything regardless of sampling, and
    // flags which records kept their trace.
    assert_eq!(tele.flight().len(), 25);
    let records = tele.flight().records();
    assert_eq!(records.iter().filter(|r| r.class == "error").count(), 5);
    assert_eq!(records.iter().filter(|r| r.trace_committed).count(), 9);
    for r in records.iter().filter(|r| r.class == "error") {
        assert!(r.trace_committed, "interesting record lost its trace");
        assert_eq!(r.code, "unknown_user");
    }
}

/// With a zero latency threshold every request is "slow" and every
/// trace survives — the recorder-side view of "keep 100%".
#[test]
fn zero_latency_threshold_keeps_every_trace() {
    let ssn = dataset();
    let obs = std::sync::Arc::new(Obs::new(ObsConfig {
        metrics: false,
        tracing: true,
        trace_capacity: 1 << 14,
    }));
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            obs: Some(obs.clone()),
            ..Default::default()
        },
    );
    let tele = std::sync::Arc::new(ServeObs::new(&ServeObsConfig {
        tail: TailConfig {
            latency_threshold: Some(Duration::ZERO),
            head_rate: 0,
            seed: 9,
        },
        flight: FlightConfig { capacity: 8 },
        ..Default::default()
    }));
    let cfg = ServeConfig {
        threads: 2,
        telemetry: tele.clone(),
        ..Default::default()
    };
    serve(
        &engine,
        &cfg,
        (0..10u64).map(|i| request(i, (i as u32 * 3) % 40)),
        |_| {},
    );
    let (kept_outcome, kept_slow, kept_head, dropped) = tele.tail().stats();
    assert_eq!(kept_outcome + kept_slow, 10);
    assert_eq!((kept_head, dropped), (0, 0));
    // A tiny flight ring under churn: capacity respected, eviction
    // metered.
    assert_eq!(tele.flight().len(), 8);
    assert_eq!(tele.flight().dropped(), 2);
}

/// Observability must never perturb answers: the same stream served
/// with full observability (metrics + tracing + tail sampling + flight
/// recorder) and with none produces bit-identical responses.
#[test]
fn answers_bit_identical_with_observability_on_and_off() {
    let ssn = dataset();
    let num_users = ssn.social().num_users() as u32;
    let queries: Vec<GpSsnQuery> = (0..12u32)
        .map(|i| {
            let mut q = GpSsnQuery::with_defaults((i * 11) % num_users);
            q.radius = if i % 3 == 0 { 2.5 } else { 1.0 };
            q
        })
        .collect();

    let run = |with_obs: bool| -> Vec<(u64, String)> {
        let obs = with_obs.then(|| {
            std::sync::Arc::new(Obs::new(ObsConfig {
                metrics: true,
                tracing: true,
                trace_capacity: 1 << 14,
            }))
        });
        let engine = GpSsnEngine::build(
            &ssn,
            EngineConfig {
                obs,
                ..Default::default()
            },
        );
        let tele = std::sync::Arc::new(ServeObs::default());
        let cfg = ServeConfig {
            threads: 2,
            telemetry: tele,
            ..Default::default()
        };
        let out = Mutex::new(Vec::new());
        serve(
            &engine,
            &cfg,
            queries.iter().enumerate().map(|(i, q)| {
                Submission::Request(ServeRequest {
                    id: i as u64,
                    query: q.clone(),
                    budget: QueryBudget::unlimited(),
                })
            }),
            |resp| {
                // Render the full answer (bit-exact distance) so the
                // comparison cannot pass on rounding.
                let rendered = match &resp.result {
                    Ok(out) => match &out.answer {
                        Some(a) => format!("{:?}|{:?}|{:x}", a.users, a.pois, a.maxdist.to_bits()),
                        None => "none".into(),
                    },
                    Err(e) => format!("err:{e}"),
                };
                out.lock().unwrap().push((resp.id, rendered));
            },
        );
        out.into_inner().unwrap()
    };

    assert_eq!(run(true), run(false), "observability perturbed answers");
}

/// In-stream control lines return the same dumps as the HTTP routes,
/// immediately, without counting as submissions.
#[test]
fn control_lines_dump_telemetry_in_stream() {
    let engine = shared_engine();
    let tele = std::sync::Arc::new(ServeObs::default());
    let cfg = ServeConfig {
        threads: 1,
        telemetry: tele,
        ..Default::default()
    };
    let input = "{\"id\":1,\"user\":3}\n\
                 {\"control\":\"slo\"}\n\
                 {\"control\":\"flight\"}\n\
                 {\"control\":\"metrics\"}\n\
                 {\"control\":\"bogus\"}\n";
    let mut out = Vec::new();
    let stats = serve_jsonl(engine, &cfg, input.as_bytes(), &mut out).unwrap();
    assert_eq!(stats.submitted, 1, "control lines are not submissions");
    let out = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 5);
    let slo = json::parse(
        lines
            .iter()
            .find(|l| l.starts_with("{\"control\":\"slo\""))
            .expect("slo control reply"),
    )
    .unwrap();
    assert!(slo.get("data").is_some());
    let flight = json::parse(
        lines
            .iter()
            .find(|l| l.starts_with("{\"control\":\"flight\""))
            .expect("flight control reply"),
    )
    .unwrap();
    assert!(flight
        .get("data")
        .and_then(|d| d.get("records"))
        .and_then(|r| r.as_array())
        .is_some());
    assert!(lines
        .iter()
        .any(|l| l.starts_with("{\"control\":\"metrics\"")));
    assert!(lines
        .iter()
        .any(|l| l.starts_with("{\"control\":\"bogus\"") && l.contains("unknown control")));
    assert!(lines.iter().any(|l| l.contains("\"id\":1")));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The queue-depth gauge's invariant (the issue's audit): whatever
    /// the mix of served / expired / shed / invalid submissions, the
    /// policy, and the queue bound, depth returns to exactly 0 once
    /// the stream drains.
    #[test]
    fn queue_depth_drains_to_zero(
        threads in 1usize..4,
        queue_cap in 0usize..4,
        shed in (0u8..2).prop_map(|b| b == 1),
        kinds in proptest::collection::vec(0u8..4, 1..24),
    ) {
        let engine = shared_engine();
        let tele = std::sync::Arc::new(ServeObs::default());
        let cfg = ServeConfig {
            threads,
            queue_capacity: queue_cap,
            overload: if shed { OverloadPolicy::Shed } else { OverloadPolicy::Block },
            telemetry: tele.clone(),
            ..Default::default()
        };
        let n = kinds.len();
        let responses = Mutex::new(0usize);
        serve(
            engine,
            &cfg,
            kinds.iter().enumerate().map(|(i, kind)| match kind {
                0 => request(i as u64, (i as u32 * 5) % 40),
                1 => Submission::Request(ServeRequest {
                    id: i as u64,
                    query: GpSsnQuery::with_defaults(i as u32 % 40),
                    budget: QueryBudget {
                        deadline: Some(Duration::ZERO), // shed at submission
                        ..QueryBudget::unlimited()
                    },
                }),
                2 => request(i as u64, 1_000_000), // unknown user → error
                _ => Submission::Rejected {
                    id: i as u64,
                    error: gpssn::core::GpSsnError::InvalidQuery("bad line".into()),
                },
            }),
            |_| *responses.lock().unwrap() += 1,
        );
        prop_assert_eq!(*responses.lock().unwrap(), n, "every submission answered");
        prop_assert_eq!(tele.queue_depth(), 0, "queue depth must drain to zero");
        // Flight + SLO saw every submission exactly once.
        let slo = tele.slo().snapshot(tele.slo().now_ns());
        prop_assert_eq!(slo.total, n as u64);
    }
}
