//! Cross-crate substrate integration: index bounds versus exact oracles
//! on full spatial-social networks (the glue the per-crate unit tests
//! cannot see).

use gpssn::index::{RoadIndex, RoadIndexConfig, SocialIndex, SocialIndexConfig};
use gpssn::road::{dist_rn, lb_dist_via_pivots, ub_dist_via_pivots, RoadPivots};
use gpssn::social::SocialPivots;
use gpssn::ssn::{synthetic, SyntheticConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn road_index_pivot_bounds_sandwich_user_poi_distances() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 3);
    let pivots = RoadPivots::new(ssn.road(), vec![0, 7, 23]);
    let index = RoadIndex::build(ssn.road(), ssn.pois(), pivots, RoadIndexConfig::default());
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..30 {
        let u = rng.gen_range(0..ssn.social().num_users()) as u32;
        let o = rng.gen_range(0..ssn.pois().len()) as u32;
        let exact = ssn.user_poi_distance(u, o);
        let ud = index.pivots().point_dists(ssn.road(), &ssn.home(u));
        let od = &index.poi(o).pivot_dists;
        let lb = lb_dist_via_pivots(&ud, od);
        let ub = ub_dist_via_pivots(&ud, od);
        assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact}");
        assert!(ub + 1e-9 >= exact, "ub {ub} < exact {exact}");
    }
}

#[test]
fn social_index_hop_bounds_are_sound() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), 4);
    let sp = SocialPivots::new(ssn.social(), vec![0, 3, 9]);
    let rp = RoadPivots::new(ssn.road(), vec![0, 5]);
    let idx = SocialIndex::build(
        &ssn,
        sp,
        &rp,
        &SocialIndexConfig {
            leaf_size: 16,
            fanout: 4,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(2);
    let m = ssn.social().num_users();
    for _ in 0..30 {
        let a = rng.gen_range(0..m) as u32;
        let b = rng.gen_range(0..m) as u32;
        let exact = gpssn::social::hops::dist_sn(ssn.social(), a, b);
        let lb = gpssn::core::pruning::social_distance::lb_dist_sn_users(
            idx.user_sn_dists(a),
            idx.user_sn_dists(b),
        );
        if exact != gpssn::social::UNREACHABLE_HOPS {
            assert!(lb <= exact, "lb {lb} > exact {exact} for ({a},{b})");
        }
    }
}

#[test]
fn road_index_sup_k_covers_every_query_radius_ball() {
    // For any radius r in [r_min, r_max], the keyword union of the
    // radius-r ball around a POI must be contained in its sup_K (the
    // invariant that makes Lemma 1/6 pruning safe).
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.006), 5);
    let cfg = RoadIndexConfig {
        r_min: 0.5,
        r_max: 3.0,
        ..Default::default()
    };
    let pivots = RoadPivots::new(ssn.road(), vec![1]);
    let index = RoadIndex::build(ssn.road(), ssn.pois(), pivots, cfg);
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..12 {
        let o = rng.gen_range(0..ssn.pois().len()) as u32;
        let r = rng.gen_range(0.5..3.0);
        let center = ssn.pois().get(o).position;
        let ball: Vec<u32> = ssn
            .pois()
            .network_ball(ssn.road(), &center, r)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let union = ssn.pois().keyword_union(&ball);
        let sup = &index.poi(o).sup_keywords;
        for k in union {
            assert!(
                sup.contains(&k),
                "sup_K of poi {o} misses keyword {k} at r={r}"
            );
        }
        // And sub_K is contained in the ball's union (lower-bound side).
        let ball_union = ssn.pois().keyword_union(
            &ssn.pois()
                .network_ball(ssn.road(), &center, r)
                .into_iter()
                .map(|(id, _)| id)
                .collect::<Vec<_>>(),
        );
        for &k in &index.poi(o).sub_keywords {
            assert!(
                ball_union.contains(&k),
                "sub_K of poi {o} not ⊆ ball union at r={r}"
            );
        }
    }
}

#[test]
fn network_ball_matches_linear_scan() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.006), 8);
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..10 {
        let o = rng.gen_range(0..ssn.pois().len()) as u32;
        let r = rng.gen_range(0.5..4.0);
        let center = ssn.pois().get(o).position;
        let mut got: Vec<u32> = ssn
            .pois()
            .network_ball(ssn.road(), &center, r)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = (0..ssn.pois().len() as u32)
            .filter(|&i| dist_rn(ssn.road(), &center, &ssn.pois().get(i).position) <= r)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected, "ball mismatch at poi {o} r {r}");
    }
}
