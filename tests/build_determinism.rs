//! Acceptance properties for the parallel deterministic index build.
//!
//! The whole point of the parallel builders (STR packing, independent-set
//! CH contraction, chunked pivot tables and augmentation) is that the
//! *serialized* index is a pure function of the inputs — the thread
//! count sizes the worker pool and nothing else. These tests pin that
//! contract at the workspace level, over the real v2 on-disk format:
//!
//! 1. **Road-index bytes** — the full pipeline (pivot tables, POI
//!    augmentation, STR tree, CH oracle) built at 1, 2, 8, and 0 (= all
//!    cores) threads serializes to byte-identical `write_road_index`
//!    output, checked via both the raw bytes and the CRC-32 the healing
//!    loader trusts.
//! 2. **Round-trip under threads** — an index written by a parallel
//!    build reads back and re-serializes to the same bytes, so a healed
//!    or reloaded index can never drift from a fresh parallel build.
//! 3. **Social index** — the parallel social build matches the
//!    sequential one node-for-node and table-for-table (it has no
//!    serializer; the public surface is compared bit-for-bit).

use gpssn::index::{
    crc32::crc32, read_road_index, select_road_pivots, select_social_pivots, write_road_index,
    PivotSelectConfig, RoadIndex, RoadIndexConfig, SocialIndex, SocialIndexConfig,
};
use gpssn::road::RoadPivots;
use gpssn::social::SocialPivots;
use gpssn::ssn::{synthetic, SpatialSocialNetwork, SyntheticConfig};

fn small_ssn(seed: u64) -> SpatialSocialNetwork {
    synthetic(&SyntheticConfig::uni().scaled(0.02), seed)
}

fn road_bytes(ssn: &SpatialSocialNetwork, threads: usize) -> Vec<u8> {
    let ps = PivotSelectConfig {
        count: 4,
        ..Default::default()
    };
    let ids = select_road_pivots(ssn.road(), &ps);
    let pivots = RoadPivots::new_with_threads(ssn.road(), ids, threads);
    let mut cfg = RoadIndexConfig::default();
    cfg.build.threads = threads;
    let idx = RoadIndex::build(ssn.road(), ssn.pois(), pivots, cfg);
    let mut bytes = Vec::new();
    write_road_index(&idx, &mut bytes).expect("serialize road index");
    bytes
}

#[test]
fn road_index_bytes_identical_across_thread_counts() {
    let ssn = small_ssn(7);
    let base = road_bytes(&ssn, 1);
    let base_crc = crc32(&base);
    for threads in [2usize, 8, 0] {
        let bytes = road_bytes(&ssn, threads);
        assert_eq!(
            crc32(&bytes),
            base_crc,
            "crc32 diverges at threads={threads}"
        );
        assert_eq!(bytes, base, "serialized bytes diverge at threads={threads}");
    }
}

#[test]
fn parallel_build_round_trips_through_the_v2_format() {
    let ssn = small_ssn(11);
    let bytes = road_bytes(&ssn, 0);
    let idx = read_road_index(ssn.road(), ssn.pois(), &bytes[..]).expect("read back");
    let mut again = Vec::new();
    write_road_index(&idx, &mut again).expect("re-serialize");
    assert_eq!(again, bytes, "round-trip changed the bytes");
}

#[test]
fn social_index_identical_across_thread_counts() {
    let ssn = small_ssn(13);
    let ps = PivotSelectConfig {
        count: 3,
        ..Default::default()
    };
    let build = |threads: usize| -> SocialIndex {
        let sp = SocialPivots::new_with_threads(
            ssn.social(),
            select_social_pivots(ssn.social(), &ps),
            threads,
        );
        let rp =
            RoadPivots::new_with_threads(ssn.road(), select_road_pivots(ssn.road(), &ps), threads);
        let mut cfg = SocialIndexConfig {
            leaf_size: 8,
            fanout: 3,
            ..Default::default()
        };
        cfg.build.threads = threads;
        SocialIndex::build(&ssn, sp, &rp, &cfg)
    };
    let base = build(1);
    let m = ssn.social().num_users();
    for threads in [2usize, 8, 0] {
        let idx = build(threads);
        assert_eq!(
            idx.root(),
            base.root(),
            "root diverges at threads={threads}"
        );
        assert_eq!(idx.height(), base.height());
        assert_eq!(idx.num_pages(), base.num_pages());
        for id in 0..base.num_pages() as u32 {
            assert_eq!(
                format!("{:?}", idx.node(id)),
                format!("{:?}", base.node(id)),
                "node {id} diverges at threads={threads}"
            );
        }
        for u in 0..m as u32 {
            assert_eq!(idx.user_sn_dists(u), base.user_sn_dists(u));
            let a = idx.user_rn_dists(u);
            let b = base.user_rn_dists(u);
            assert!(
                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "user {u} road table diverges at threads={threads}"
            );
        }
    }
}
