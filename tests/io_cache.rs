//! Buffer-pool accounting and the tight interest-MBR test: neither may
//! change answers; both may only reduce cost / increase pruning.

use gpssn::core::algorithm::QueryOptions;
use gpssn::core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn::ssn::{synthetic, SyntheticConfig};

#[test]
fn page_cache_reduces_io_without_changing_answers() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.015), 19);
    let raw = GpSsnEngine::build(&ssn, EngineConfig::default());
    let cached = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            page_cache_capacity: Some(64),
            ..Default::default()
        },
    );
    let mut any_hit = false;
    for user in [1u32, 5, 11, 1, 5, 11] {
        let q = GpSsnQuery {
            user,
            tau: 3,
            gamma: 0.3,
            theta: 0.3,
            radius: 2.5,
        };
        let a = raw.query(&q);
        let b = cached.query(&q);
        assert_eq!(
            a.answer.as_ref().map(|x| (x.users.clone(), x.pois.clone())),
            b.answer.as_ref().map(|x| (x.users.clone(), x.pois.clone())),
            "cache changed the answer for user {user}"
        );
        assert!(
            b.metrics.io_pages <= a.metrics.io_pages,
            "cache increased I/O: {} > {}",
            b.metrics.io_pages,
            a.metrics.io_pages
        );
        if b.metrics.io_pages < a.metrics.io_pages {
            any_hit = true;
        }
    }
    // The pool persists across queries: the repeated queries must hit.
    assert!(any_hit, "buffer pool never hit across repeated queries");
}

#[test]
fn tiny_cache_still_correct() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 23);
    let raw = GpSsnEngine::build(&ssn, EngineConfig::default());
    let cached = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            page_cache_capacity: Some(1),
            ..Default::default()
        },
    );
    let q = GpSsnQuery {
        user: 2,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 2.0,
    };
    assert_eq!(
        raw.query(&q).answer.map(|a| a.maxdist),
        cached.query(&q).answer.map(|a| a.maxdist)
    );
}

#[test]
fn tight_mbr_test_preserves_answers_and_prunes_no_less() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.02), 29);
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
    for user in [3u32, 9, 17] {
        let q = GpSsnQuery {
            user,
            tau: 3,
            gamma: 0.4,
            theta: 0.3,
            radius: 2.5,
        };
        let geo = engine.query_with_options(
            &q,
            &QueryOptions {
                collect_stats: true,
                ..Default::default()
            },
        );
        let tight = engine.query_with_options(
            &q,
            &QueryOptions {
                collect_stats: true,
                use_tight_mbr_test: true,
                ..Default::default()
            },
        );
        assert_eq!(
            geo.answer.as_ref().map(|a| a.maxdist),
            tight.answer.as_ref().map(|a| a.maxdist),
            "tight MBR test changed the answer"
        );
        assert!(
            tight.metrics.stats.users_pruned_index >= geo.metrics.stats.users_pruned_index,
            "tight test pruned fewer nodes than the geometric one"
        );
    }
}
