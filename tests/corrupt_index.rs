//! Bit-flip fuzz over the persisted road-index format.
//!
//! The serialized index is the one artifact that crosses a process
//! boundary, so its reader must be total: for *any* single-bit
//! corruption at *any* byte offset, `read_road_index` must return a
//! clean `InvalidData` error (never panic, never mis-load), and the
//! healing reader must additionally recover whenever the damage is
//! confined to the rebuildable CH section.

use gpssn::graph::ValueDistribution;
use gpssn::index::{
    corrupt_section, read_road_index, read_road_index_healing, write_road_index, RoadIndex,
    RoadIndexConfig,
};
use gpssn::road::{
    generate_pois, generate_road_network, PoiGenConfig, PoiSet, RoadGenConfig, RoadNetwork,
    RoadPivots,
};
use rand::{rngs::StdRng, SeedableRng};
use std::io::ErrorKind;

/// A deliberately tiny instance: the fuzz loop parses the file once per
/// byte offset, so the file must stay small for the sweep to be cheap.
fn tiny_instance() -> (RoadNetwork, PoiSet) {
    let mut rng = StdRng::seed_from_u64(7);
    let road = generate_road_network(
        &RoadGenConfig {
            num_vertices: 48,
            space_size: 10.0,
            neighbors_per_vertex: 2,
        },
        &mut rng,
    );
    let pois = PoiSet::new(
        &road,
        generate_pois(
            &road,
            &PoiGenConfig {
                num_pois: 12,
                num_keywords: 4,
                max_keywords_per_poi: 2,
                distribution: ValueDistribution::Uniform,
                keyword_locality: 0.8,
            },
            &mut rng,
        ),
    );
    (road, pois)
}

fn tiny_index(road: &RoadNetwork, pois: &PoiSet) -> RoadIndex {
    RoadIndex::build(
        road,
        pois,
        RoadPivots::new(road, vec![0, 24]),
        RoadIndexConfig {
            r_max: 3.0,
            build_ch: true,
            ..Default::default()
        },
    )
}

/// Every byte offset, one flipped bit per seed: the strict reader either
/// rejects the file with `InvalidData` (optionally carrying the corrupt
/// section's name) or — never observed for a real flip, but permitted —
/// returns an index equivalent to the original.
#[test]
fn single_bit_flips_never_panic_the_reader() {
    let (road, pois) = tiny_instance();
    let idx = tiny_index(&road, &pois);
    let mut bytes = Vec::new();
    write_road_index(&idx, &mut bytes).unwrap();

    for seed in [0u64, 1, 2] {
        for offset in 0..bytes.len() {
            // A cheap per-(seed, offset) bit choice keeps the sweep
            // deterministic while varying which bit each seed hits.
            let bit = ((offset as u64).wrapping_mul(31).wrapping_add(seed * 13) % 8) as u8;
            let mut flipped = bytes.clone();
            flipped[offset] ^= 1 << bit;
            match read_road_index(&road, &pois, &flipped[..]) {
                Ok(back) => {
                    // The flip must have been semantically invisible for
                    // the load to succeed; the index must still be whole.
                    assert_eq!(back.num_pois(), idx.num_pois());
                    assert_eq!(back.pivots().pivots(), idx.pivots().pivots());
                }
                Err(e) => assert_eq!(
                    e.kind(),
                    ErrorKind::InvalidData,
                    "offset {offset} bit {bit}: unexpected error kind from {e}"
                ),
            }
        }
    }
}

/// The same sweep through the healing reader: damage confined to the CH
/// section is always healed (the oracle is rebuilt from the road graph);
/// everything else still fails closed with `InvalidData`.
#[test]
fn healing_reader_survives_every_single_bit_flip() {
    let (road, pois) = tiny_instance();
    let idx = tiny_index(&road, &pois);
    let mut bytes = Vec::new();
    write_road_index(&idx, &mut bytes).unwrap();

    // Locate the CH section body: flips strictly inside it must heal.
    let text = std::str::from_utf8(&bytes).unwrap();
    let ch_body_start = text
        .lines()
        .take_while(|l| !l.starts_with("section ch "))
        .map(|l| l.len() + 1)
        .sum::<usize>()
        + text
            .lines()
            .find(|l| l.starts_with("section ch "))
            .expect("v2 file has a ch section")
            .len()
        + 1;

    let mut healed_loads = 0u32;
    for offset in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[offset] ^= 1 << (offset % 8);
        match read_road_index_healing(&road, &pois, &flipped[..]) {
            Ok(h) => {
                assert_eq!(h.index.num_pois(), idx.num_pois());
                if h.rebuilt_ch {
                    healed_loads += 1;
                    assert!(h.index.ch().is_some(), "healing must leave an oracle");
                }
            }
            Err(e) => {
                assert_eq!(e.kind(), ErrorKind::InvalidData, "offset {offset}: {e}");
                assert!(
                    offset < ch_body_start || corrupt_section(&e).is_none(),
                    "offset {offset} lies in the CH body but was not healed: {e}"
                );
            }
        }
    }
    assert!(
        healed_loads > 0,
        "no flip in the CH body exercised the healing path"
    );
}
