//! Tests for the extension features beyond the paper's core algorithm:
//! approximate refinement by subset sampling (the paper's stated future
//! work) and top-k GP-SSN answers.

use gpssn::core::query::check_answer;
use gpssn::core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn::index::SocialIndexConfig;
use gpssn::ssn::{synthetic, SpatialSocialNetwork, SyntheticConfig};

fn engine(ssn: &SpatialSocialNetwork) -> GpSsnEngine<'_> {
    GpSsnEngine::build(
        ssn,
        EngineConfig {
            num_road_pivots: 3,
            num_social_pivots: 3,
            social_index: SocialIndexConfig {
                leaf_size: 16,
                fanout: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[test]
fn approximate_answers_validate_and_bound_exact() {
    for seed in 0..5u64 {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), seed);
        let eng = engine(&ssn);
        let q = GpSsnQuery {
            user: 1,
            tau: 2,
            gamma: 0.3,
            theta: 0.3,
            radius: 2.5,
        };
        let exact = eng.query(&q).answer;
        let approx = eng.query_approximate(&q, 32, seed).answer;
        if let Some(a) = &approx {
            check_answer(&ssn, &q, a).expect("approximate answer violates Definition 5");
            if let Some(e) = &exact {
                assert!(
                    a.maxdist + 1e-9 >= e.maxdist,
                    "approximate ({}) beat exact ({})",
                    a.maxdist,
                    e.maxdist
                );
            } else {
                panic!("approximate found an answer where exact found none");
            }
        }
    }
}

#[test]
fn approximate_usually_finds_feasible_queries() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.02), 4);
    let eng = engine(&ssn);
    let mut exact_hits = 0;
    let mut approx_hits = 0;
    for user in [1u32, 5, 9, 13, 21] {
        let q = GpSsnQuery {
            user,
            tau: 3,
            gamma: 0.3,
            theta: 0.3,
            radius: 2.5,
        };
        if eng.query(&q).answer.is_some() {
            exact_hits += 1;
            if eng.query_approximate(&q, 64, 7).answer.is_some() {
                approx_hits += 1;
            }
        }
    }
    assert!(exact_hits > 0, "fixture produced no feasible queries");
    assert!(
        approx_hits * 2 >= exact_hits,
        "sampling missed too often: {approx_hits}/{exact_hits}"
    );
}

#[test]
fn top_k_is_sorted_valid_and_starts_at_the_optimum() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.015), 11);
    let eng = engine(&ssn);
    let q = GpSsnQuery {
        user: 2,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 2.5,
    };
    let single = eng.query(&q).answer;
    let top = eng.query_top_k(&q, 5);
    if let Some(best) = &single {
        assert!(!top.is_empty());
        assert!(
            (top[0].maxdist - best.maxdist).abs() < 1e-6,
            "top-1 ({}) differs from the optimum ({})",
            top[0].maxdist,
            best.maxdist
        );
    }
    for w in top.windows(2) {
        assert!(w[0].maxdist <= w[1].maxdist + 1e-9, "top-k not sorted");
    }
    for ans in &top {
        check_answer(&ssn, &q, ans).expect("top-k answer violates Definition 5");
    }
    // Distinct (S, R) pairs.
    for i in 0..top.len() {
        for j in (i + 1)..top.len() {
            assert!(
                top[i].users != top[j].users || top[i].pois != top[j].pois,
                "duplicate answers in top-k"
            );
        }
    }
}

#[test]
fn exact_social_distance_mode_is_equivalent_and_prunes_no_less() {
    use gpssn::core::algorithm::QueryOptions;
    for seed in 50..54u64 {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), seed);
        let pivot_engine = engine(&ssn);
        let exact_engine = GpSsnEngine::build(
            &ssn,
            EngineConfig {
                num_road_pivots: 3,
                num_social_pivots: 3,
                social_index: SocialIndexConfig {
                    leaf_size: 16,
                    fanout: 4,
                    ..Default::default()
                },
                exact_social_distance: true,
                ..Default::default()
            },
        );
        let q = GpSsnQuery {
            user: 1,
            tau: 3,
            gamma: 0.3,
            theta: 0.3,
            radius: 2.5,
        };
        let opts = QueryOptions {
            collect_stats: true,
            ..Default::default()
        };
        let a = pivot_engine.query_with_options(&q, &opts);
        let b = exact_engine.query_with_options(&q, &opts);
        assert_eq!(
            a.answer.as_ref().map(|x| x.maxdist),
            b.answer.as_ref().map(|x| x.maxdist),
            "exact social distances changed the answer (seed {seed})"
        );
        // Exact distances can only prune at least as many users at the
        // object level (the pivot rule is a lower bound of the truth).
        assert!(
            b.metrics.stats.users_pruned_object + b.metrics.stats.users_pruned_index
                >= a.metrics.stats.users_pruned_object,
            "exact mode pruned fewer users (seed {seed})"
        );
    }
}

#[test]
fn top_k_matches_exhaustive_oracle() {
    use gpssn::core::exact_baseline_top_k;
    for seed in 60..64u64 {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.006), seed);
        let eng = engine(&ssn);
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.3,
            theta: 0.3,
            radius: 2.0,
        };
        let expected = exact_baseline_top_k(&ssn, &q, 4);
        let got = eng.query_top_k(&q, 4);
        assert_eq!(
            expected.len(),
            got.len(),
            "seed {seed}: answer counts differ"
        );
        for (e, g) in expected.iter().zip(got.iter()) {
            assert!(
                (e.maxdist - g.maxdist).abs() < 1e-6,
                "seed {seed}: objective ranks differ: {} vs {}",
                e.maxdist,
                g.maxdist
            );
        }
    }
}

#[test]
fn top_1_matches_query_across_seeds() {
    for seed in 30..34u64 {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.008), seed);
        let eng = engine(&ssn);
        let q = GpSsnQuery {
            user: 0,
            tau: 2,
            gamma: 0.35,
            theta: 0.3,
            radius: 2.0,
        };
        let single = eng.query(&q).answer;
        let top = eng.query_top_k(&q, 1);
        match (single, top.first()) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert!((a.maxdist - b.maxdist).abs() < 1e-6, "seed {seed} mismatch")
            }
            other => panic!("seed {seed}: feasibility mismatch {other:?}"),
        }
    }
}
