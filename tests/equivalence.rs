//! The central correctness property of the reproduction: the indexed
//! GP-SSN engine (Algorithm 2 + all pruning) returns exactly the same
//! optimum as the exhaustive Baseline on randomized small spatial-social
//! networks, across a grid of query parameters.

use gpssn::core::algorithm::{EngineConfig, QueryOptions};
use gpssn::core::query::check_answer;
use gpssn::core::{exact_baseline, GpSsnEngine, GpSsnQuery};
use gpssn::index::{PivotSelectConfig, SocialIndexConfig};
use gpssn::ssn::{synthetic, SyntheticConfig};

fn small_cfg(seed: u64) -> EngineConfig {
    EngineConfig {
        num_road_pivots: 3,
        num_social_pivots: 3,
        social_index: SocialIndexConfig {
            leaf_size: 8,
            fanout: 3,
            ..Default::default()
        },
        pivot_select: PivotSelectConfig {
            seed,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn engine_matches_brute_force_across_seeds_and_parameters() {
    let taus = [1usize, 2, 3];
    let gammas = [0.2, 0.5, 0.8];
    let thetas = [0.2, 0.6];
    let radii = [1.0, 3.0];
    let mut checked = 0usize;
    let mut answered = 0usize;
    for seed in 0..6u64 {
        let ssn = synthetic(&SyntheticConfig::uni().scaled(0.004), seed);
        let engine = GpSsnEngine::build(&ssn, small_cfg(seed));
        let m = ssn.social().num_users() as u32;
        for (qi, &tau) in taus.iter().enumerate() {
            for (gi, &gamma) in gammas.iter().enumerate() {
                for &theta in &thetas {
                    for &radius in &radii {
                        let user = ((seed as u32 + qi as u32 * 7 + gi as u32 * 3) % m) as u32;
                        let q = GpSsnQuery {
                            user,
                            tau,
                            gamma,
                            theta,
                            radius,
                        };
                        let expected = exact_baseline(&ssn, &q);
                        let got = engine.query(&q).answer;
                        checked += 1;
                        match (&expected, &got) {
                            (None, None) => {}
                            (Some(e), Some(g)) => {
                                answered += 1;
                                check_answer(&ssn, &q, g).expect("engine answer invalid");
                                assert!(
                                    (e.maxdist - g.maxdist).abs() < 1e-6,
                                    "objective mismatch seed={seed} q={q:?}: \
                                     baseline {} vs engine {}",
                                    e.maxdist,
                                    g.maxdist
                                );
                            }
                            (e, g) => panic!(
                                "feasibility mismatch seed={seed} q={q:?}: baseline {:?} engine {:?}",
                                e.as_ref().map(|a| a.maxdist),
                                g.as_ref().map(|a| a.maxdist)
                            ),
                        }
                    }
                }
            }
        }
    }
    assert!(checked >= 200, "grid too small: {checked}");
    assert!(
        answered >= 10,
        "too few feasible cases exercised: {answered}"
    );
}

#[test]
fn engine_matches_brute_force_on_zipf_data() {
    for seed in 20..24u64 {
        let ssn = synthetic(&SyntheticConfig::zipf().scaled(0.004), seed);
        let engine = GpSsnEngine::build(&ssn, small_cfg(seed));
        let q = GpSsnQuery {
            user: 1,
            tau: 2,
            gamma: 0.4,
            theta: 0.4,
            radius: 2.0,
        };
        let expected = exact_baseline(&ssn, &q);
        let got = engine.query(&q).answer;
        match (expected, got) {
            (None, None) => {}
            (Some(e), Some(g)) => assert!((e.maxdist - g.maxdist).abs() < 1e-6),
            other => panic!("mismatch on seed {seed}: {other:?}"),
        }
    }
}

#[test]
fn every_pruning_subset_is_exact() {
    // Toggling pruning families off must never change the answer.
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.005), 77);
    let engine = GpSsnEngine::build(&ssn, small_cfg(77));
    let q = GpSsnQuery {
        user: 3,
        tau: 2,
        gamma: 0.4,
        theta: 0.3,
        radius: 2.5,
    };
    let reference = engine.query(&q).answer;
    for mask in 0..16u32 {
        let opts = QueryOptions {
            collect_stats: false,
            use_interest_pruning: mask & 1 != 0,
            use_social_distance_pruning: mask & 2 != 0,
            use_matching_pruning: mask & 4 != 0,
            use_delta_pruning: mask & 8 != 0,
            use_tight_mbr_test: false,
            ..Default::default()
        };
        let got = engine.query_with_options(&q, &opts).answer;
        match (&reference, &got) {
            (None, None) => {}
            (Some(a), Some(b)) => assert!(
                (a.maxdist - b.maxdist).abs() < 1e-6,
                "mask {mask}: {} vs {}",
                a.maxdist,
                b.maxdist
            ),
            other => panic!("mask {mask} changed feasibility: {other:?}"),
        }
    }
}
