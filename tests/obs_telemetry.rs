//! PR 4 acceptance properties for the telemetry layer.
//!
//! 1. **Fig. 7 parity** — the Prometheus exposition path carries exactly
//!    the same pruning counters as the legacy [`PruningStats`] returned
//!    per query: bitwise-equal u64 sums, and a `PruningStats`
//!    reconstructed from the exposition text reproduces every Fig. 7
//!    power accessor bit-for-bit.
//! 2. **Chrome trace validity** — a traced query emits `trace_event`
//!    JSON our own minimal parser accepts, with the query → prune →
//!    refine → verify_center → distance-layer span levels present and
//!    `verify_center` spans parented under a refinement span.
//! 3. **Batch-merge determinism** — two identical batch runs on fresh
//!    engines produce identical counter maps, regardless of how the OS
//!    interleaves the worker threads (per-thread registries merged in
//!    chunk order).

use gpssn::core::algorithm::{EngineConfig, QueryOptions};
use gpssn::core::{GpSsnEngine, GpSsnQuery, PruningStats, QueryBudget};
use gpssn::index::{PivotSelectConfig, SocialIndexConfig};
use gpssn::obs::{chrome_trace_json, json, Obs};
use gpssn::ssn::{synthetic, SpatialSocialNetwork, SyntheticConfig};
use std::sync::Arc;

fn small_cfg(seed: u64, obs: Option<Arc<Obs>>) -> EngineConfig {
    EngineConfig {
        num_road_pivots: 3,
        num_social_pivots: 3,
        social_index: SocialIndexConfig {
            leaf_size: 8,
            fanout: 3,
            ..Default::default()
        },
        pivot_select: PivotSelectConfig {
            seed,
            ..Default::default()
        },
        // No cross-query cache: its hit/miss split depends on thread
        // interleaving, which would make the determinism test vacuous.
        distance_cache: None,
        obs,
        ..Default::default()
    }
}

/// The usual parameter-grid corpus (mirrors the refinement suite).
fn corpus(ssn: &SpatialSocialNetwork, seed: u64) -> Vec<GpSsnQuery> {
    let m = ssn.social().num_users() as u32;
    let mut qs = Vec::new();
    for (qi, &tau) in [1usize, 2, 3].iter().enumerate() {
        for (gi, &gamma) in [0.2, 0.5, 0.8].iter().enumerate() {
            for &theta in &[0.2, 0.6] {
                for &radius in &[1.0, 2.0, 3.0] {
                    let user = (seed as u32 + qi as u32 * 7 + gi as u32 * 3) % m;
                    qs.push(GpSsnQuery {
                        user,
                        tau,
                        gamma,
                        theta,
                        radius,
                    });
                }
            }
        }
    }
    qs
}

/// Value of the counter whose rendered id is exactly `id` in a
/// Prometheus exposition. Panics when the series is absent — a missing
/// series in these tests means the instrumentation regressed.
fn prom_counter(text: &str, id: &str) -> u64 {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(id) {
            if let Some(v) = rest.strip_prefix(' ') {
                return v.trim().parse().expect("counter value parses as u64");
            }
        }
    }
    panic!("series {id:?} not found in exposition:\n{text}");
}

#[test]
fn fig7_counters_match_legacy_pruning_stats_bitwise() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 7);
    let obs = Arc::new(Obs::with_metrics());
    let engine = GpSsnEngine::build(&ssn, small_cfg(7, Some(obs.clone())));
    let opts = QueryOptions {
        collect_stats: true,
        ..Default::default()
    };

    // Legacy path: sum the per-query PruningStats structs.
    let mut legacy = PruningStats::default();
    for q in corpus(&ssn, 7) {
        let out = engine.query_with_options(&q, &opts);
        let s = &out.metrics.stats;
        legacy.users_total += s.users_total;
        legacy.users_pruned_index += s.users_pruned_index;
        legacy.users_pruned_object += s.users_pruned_object;
        legacy.users_pruned_by_distance += s.users_pruned_by_distance;
        legacy.users_pruned_by_interest += s.users_pruned_by_interest;
        legacy.pois_total += s.pois_total;
        legacy.pois_pruned_index += s.pois_pruned_index;
        legacy.pois_pruned_object += s.pois_pruned_object;
        legacy.pois_pruned_by_distance += s.pois_pruned_by_distance;
        legacy.pois_pruned_by_matching += s.pois_pruned_by_matching;
        legacy.pairs_total_estimate += s.pairs_total_estimate;
        legacy.pairs_refined += s.pairs_refined;
        legacy.candidate_users += s.candidate_users;
        legacy.candidate_pois += s.candidate_pois;
    }
    assert!(legacy.users_total > 0, "corpus produced no feasible query");

    // Exposition path: reconstruct the same struct from the Prometheus
    // text. `pairs_total_estimate` is an f64 estimate, not a counter —
    // carried over so `pair_power()` still checks `pairs_refined`.
    let text = obs.base_registry().snapshot().to_prometheus();
    let exposed = PruningStats {
        users_total: prom_counter(&text, "gpssn_users_scanned_total") as usize,
        users_pruned_index: prom_counter(&text, "gpssn_pruned_users_total{stage=\"index\"}")
            as usize,
        users_pruned_object: prom_counter(&text, "gpssn_pruned_users_total{stage=\"object\"}")
            as usize,
        users_pruned_by_distance: prom_counter(
            &text,
            "gpssn_pruned_users_total{stage=\"distance\"}",
        ) as usize,
        users_pruned_by_interest: prom_counter(
            &text,
            "gpssn_pruned_users_total{stage=\"interest\"}",
        ) as usize,
        pois_total: prom_counter(&text, "gpssn_pois_scanned_total") as usize,
        pois_pruned_index: prom_counter(&text, "gpssn_pruned_pois_total{stage=\"index\"}") as usize,
        pois_pruned_object: prom_counter(&text, "gpssn_pruned_pois_total{stage=\"object\"}")
            as usize,
        pois_pruned_by_distance: prom_counter(&text, "gpssn_pruned_pois_total{stage=\"distance\"}")
            as usize,
        pois_pruned_by_matching: prom_counter(&text, "gpssn_pruned_pois_total{stage=\"matching\"}")
            as usize,
        pairs_total_estimate: legacy.pairs_total_estimate,
        pairs_refined: prom_counter(&text, "gpssn_pairs_refined_total"),
        candidate_users: prom_counter(&text, "gpssn_candidate_users_total") as usize,
        candidate_pois: prom_counter(&text, "gpssn_candidate_pois_total") as usize,
    };

    // Counters agree bitwise.
    assert_eq!(
        exposed, legacy,
        "exposition counters diverge from legacy sums"
    );

    // And therefore every Fig. 7 power accessor agrees exactly.
    let powers = [
        (
            "social_index",
            legacy.social_index_power(),
            exposed.social_index_power(),
        ),
        (
            "social_object",
            legacy.social_object_power(),
            exposed.social_object_power(),
        ),
        (
            "road_index",
            legacy.road_index_power(),
            exposed.road_index_power(),
        ),
        (
            "road_object",
            legacy.road_object_power(),
            exposed.road_object_power(),
        ),
        (
            "social_distance",
            legacy.social_distance_power(),
            exposed.social_distance_power(),
        ),
        (
            "interest",
            legacy.interest_power(),
            exposed.interest_power(),
        ),
        (
            "road_distance",
            legacy.road_distance_power(),
            exposed.road_distance_power(),
        ),
        (
            "matching",
            legacy.matching_power(),
            exposed.matching_power(),
        ),
        ("pair", legacy.pair_power(), exposed.pair_power()),
    ];
    for (name, a, b) in powers {
        assert_eq!(a.to_bits(), b.to_bits(), "{name} power differs: {a} vs {b}");
    }
}

#[test]
fn chrome_trace_is_valid_json_with_expected_span_levels() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
    let obs = Arc::new(Obs::full());
    let engine = GpSsnEngine::build(&ssn, small_cfg(11, Some(obs.clone())));

    // A handful of queries is enough to exercise every span level while
    // staying far below the ring-buffer capacity.
    for q in corpus(&ssn, 11).into_iter().take(12) {
        let _ = engine.query(&q);
    }
    let records = obs.tracer().records();
    assert_eq!(obs.tracer().dropped(), 0, "ring buffer overflowed");

    // Every span level of the query lifecycle is present, including at
    // least one distance-layer span (`ball` always; `ch_p2p` /
    // `dijkstra_batch` depending on which backend served).
    let has = |name: &str| records.iter().any(|r| r.name == name);
    for required in [
        "query",
        "prune_social",
        "prune_road",
        "refine",
        "verify_center",
    ] {
        assert!(has(required), "span {required:?} missing from trace");
    }
    assert!(
        has("ball") || has("ch_p2p") || has("dijkstra_batch"),
        "no distance-layer span in trace"
    );

    // Every verify_center span is parented under a refinement span.
    let refine_ids: std::collections::HashSet<u64> = records
        .iter()
        .filter(|r| r.name == "refine" || r.name == "refine_fallback")
        .map(|r| r.id)
        .collect();
    let mut verified = 0usize;
    for r in records.iter().filter(|r| r.name == "verify_center") {
        assert!(
            refine_ids.contains(&r.parent),
            "verify_center span {} parented under {} (not a refinement span)",
            r.id,
            r.parent
        );
        verified += 1;
    }
    assert!(verified > 0, "no verify_center span recorded");

    // The Chrome export parses with our own JSON parser and carries the
    // span tree in `args`.
    let doc = json::parse(&chrome_trace_json(&records)).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), records.len());
    for (ev, rec) in events.iter().zip(&records) {
        assert_eq!(ev.get("name").and_then(|v| v.as_str()), Some(rec.name));
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
        let args = ev.get("args").expect("args object");
        assert_eq!(args.get("id").and_then(|v| v.as_f64()), Some(rec.id as f64));
        assert_eq!(
            args.get("parent").and_then(|v| v.as_f64()),
            Some(rec.parent as f64)
        );
    }
}

#[test]
fn batch_counter_merge_is_deterministic_across_runs() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 13);
    let queries = corpus(&ssn, 13);
    let budget = QueryBudget::unlimited();

    let run = |threads: usize| {
        let obs = Arc::new(Obs::with_metrics());
        let engine = GpSsnEngine::build(&ssn, small_cfg(13, Some(obs.clone())));
        let results = engine.try_query_batch(&queries, threads, &budget);
        assert!(results.iter().all(|r| r.is_ok()));
        obs.base_registry().snapshot()
    };

    let a = run(4);
    let b = run(4);
    assert!(!a.counters.is_empty(), "batch recorded no counters");
    // Two runs over the same corpus merge per-thread registries into
    // identical counter maps (histograms carry wall-clock durations and
    // are excluded; their counts are checked against the query total).
    assert_eq!(a.counters, b.counters, "batch counters not reproducible");

    // The threaded merge equals a sequential run's direct accumulation.
    let seq = run(1);
    assert_eq!(
        a.counters, seq.counters,
        "threaded merge diverges from sequential accumulation"
    );

    assert_eq!(
        a.counter("gpssn_queries_total", &[("path", "exact")]),
        queries.len() as u64
    );
    let cpu = a
        .histogram("gpssn_query_cpu_ns", &[("path", "exact")])
        .expect("per-query CPU histogram present");
    assert_eq!(cpu.count, queries.len() as u64);
}

#[test]
fn build_stage_histograms_and_witness_counters_are_recorded() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 19);
    let obs = Arc::new(Obs::with_metrics());
    let _engine = GpSsnEngine::build(&ssn, small_cfg(19, Some(obs.clone())));
    let snap = obs.base_registry().snapshot();
    // Every stage of the build pipeline lands one observation in the
    // gpssn_build_stage_ns histogram.
    for stage in [
        "road_pivots",
        "social_pivots",
        "poi_augment",
        "rstar_str",
        "node_aggregate",
        "ch_contract",
        "user_tables",
        "leaf_partition",
        "leaf_nodes",
        "tree_levels",
    ] {
        let h = snap
            .histogram("gpssn_build_stage_ns", &[("stage", stage)])
            .unwrap_or_else(|| panic!("build stage {stage:?} not recorded"));
        assert_eq!(h.count, 1, "stage {stage:?} recorded {} times", h.count);
    }
    // The CH contraction reused its witness workspaces: every candidate
    // simulation resets the search, and all but the first per workspace
    // recycle previously-touched state instead of reallocating.
    let resets = snap.counter("gpssn_build_witness_resets_total", &[]);
    let recycles = snap.counter("gpssn_build_witness_recycles_total", &[]);
    assert!(resets > 0, "no witness searches ran during the build");
    assert!(recycles > 0, "witness workspaces were never recycled");
    assert!(recycles <= resets);
    assert!(snap.counter("gpssn_build_ch_shortcuts_total", &[]) > 0);

    // A build without a metrics sink records nothing (and still works).
    let quiet = GpSsnEngine::build(&ssn, small_cfg(19, None));
    assert!(quiet.obs_handle().is_none());
}
