//! Chaos suite: deterministic fault schedules against batch serving.
//!
//! Only compiled with the `failpoints` feature (`cargo test --features
//! failpoints`). Each schedule installs a seeded [`FaultPlan`] that makes
//! every registered fail-point site fire pseudo-randomly — spurious
//! cache misses, poisoned cache shards, CH panics mid-sweep, refinement
//! panics — then pushes a batch of queries through
//! `try_query_batch_with_options` under the degradation ladder and holds
//! the serving contract:
//!
//! * no panic escapes the batch boundary (every slot is `Ok`),
//! * `Exact` answers are bitwise-equal to the fault-free run,
//! * degraded answers (`TruncatedWithGap`, `DegradedSampling`) still
//!   satisfy Definition 5 exactly and never beat the true optimum,
//! * `Failed` slots carry no answer.
//!
//! The fault plan is process-global, so the whole sweep lives in one
//! test function — schedules run strictly one after another.
#![cfg(feature = "failpoints")]

use gpssn::core::query::check_answer;
use gpssn::core::{
    Completion, DegradationPolicy, EngineConfig, GpSsnEngine, GpSsnQuery, QueryBudget, QueryOptions,
};
use gpssn::failpoint::{install, FaultPlan};
use gpssn::ssn::{synthetic, SyntheticConfig};
use std::sync::Mutex;

const SCHEDULES: u64 = 120;
const FAULT_PROB: f64 = 0.02;

/// The installed fault plan is process-global: the tests in this binary
/// must never overlap, so each takes this lock for its whole run.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn seeded_fault_schedules_preserve_the_serving_contract() {
    let _serial = PLAN_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
    let opts = QueryOptions {
        degradation: DegradationPolicy::Ladder,
        ..Default::default()
    };
    let budget = QueryBudget::unlimited();

    // Fixture queries: keep only those whose fault-free run is exact
    // with an answer, so every schedule has a ground truth to hold
    // degraded answers against.
    let queries: Vec<GpSsnQuery> = (0..10)
        .map(|user| GpSsnQuery {
            user,
            tau: 2,
            gamma: 0.3,
            theta: 0.3,
            radius: 3.0,
        })
        .filter(|q| {
            matches!(
                engine.try_query(q, &budget),
                Ok(out) if matches!(out.completion, Completion::Exact) && out.answer.is_some()
            )
        })
        .collect();
    assert!(
        queries.len() >= 4,
        "fixture too small: only {} exact queries",
        queries.len()
    );

    // Fault-free ground truth (bitwise): maxdist bits, group, POIs.
    let truth: Vec<(u64, Vec<u32>, Vec<u32>)> = engine
        .try_query_batch_with_options(&queries, 2, &opts, &budget)
        .into_iter()
        .map(|r| {
            let ans = r.expect("fault-free batch is Ok").answer.expect("answer");
            (ans.maxdist.to_bits(), ans.users.clone(), ans.pois.clone())
        })
        .collect();

    let mut degraded = 0u64;
    let mut failed = 0u64;
    for seed in 0..SCHEDULES {
        let _guard = install(FaultPlan::uniform(seed, FAULT_PROB));
        let results = engine.try_query_batch_with_options(&queries, 2, &opts, &budget);
        for (i, res) in results.into_iter().enumerate() {
            let out = res.unwrap_or_else(|e| {
                panic!("schedule {seed} query {i}: panic/error escaped the ladder: {e}")
            });
            let (truth_bits, truth_users, truth_pois) = &truth[i];
            let truth_maxdist = f64::from_bits(*truth_bits);
            match out.completion {
                Completion::Exact => {
                    let ans = out.answer.expect("exact answers are present");
                    assert_eq!(
                        ans.maxdist.to_bits(),
                        *truth_bits,
                        "schedule {seed} query {i}: exact answer diverged under faults"
                    );
                    assert_eq!(&ans.users, truth_users, "schedule {seed} query {i}");
                    assert_eq!(&ans.pois, truth_pois, "schedule {seed} query {i}");
                }
                Completion::TruncatedWithGap(gap) => {
                    degraded += 1;
                    assert!(gap >= 0.0 && !gap.is_nan());
                    if let Some(ans) = &out.answer {
                        check_answer(&ssn, &queries[i], ans)
                            .expect("truncated answer violates Definition 5");
                        assert!(
                            ans.maxdist + 1e-9 >= truth_maxdist,
                            "schedule {seed} query {i}: degraded answer beats the optimum"
                        );
                    }
                }
                Completion::DegradedSampling => {
                    degraded += 1;
                    let ans = out
                        .answer
                        .as_ref()
                        .expect("sampling rung carries an answer");
                    check_answer(&ssn, &queries[i], ans)
                        .expect("sampled answer violates Definition 5");
                    assert!(
                        ans.maxdist + 1e-9 >= truth_maxdist,
                        "schedule {seed} query {i}: sampled answer beats the optimum"
                    );
                }
                Completion::Failed(_) => {
                    failed += 1;
                    assert!(out.answer.is_none(), "failed completions carry no answer");
                }
            }
        }
    }
    // With 120 schedules at p=0.02 across thousands of fail-point hits,
    // a sweep where nothing ever degraded means the injection is dead.
    assert!(
        degraded + failed > 0,
        "no schedule produced a degraded or failed completion — fault injection inert?"
    );
}

/// The breaker keeps serving bit-identical answers when the CH oracle
/// panics on *every* batch: all distance work rides the Dijkstra
/// fallback, so queries stay exact.
#[test]
fn always_firing_ch_faults_stay_exact_via_the_breaker() {
    use gpssn::failpoint::FireRule;

    let _serial = PLAN_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.01), 11);
    // No distance cache: the baseline query must not warm a cache that
    // would absorb every CH dispatch before a fault can fire.
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            distance_cache: None,
            ..Default::default()
        },
    );
    let opts = QueryOptions {
        degradation: DegradationPolicy::Ladder,
        ..Default::default()
    };
    let budget = QueryBudget::unlimited();
    let q = GpSsnQuery {
        user: 0,
        tau: 2,
        gamma: 0.3,
        theta: 0.3,
        radius: 3.0,
    };
    let baseline = engine.try_query(&q, &budget).unwrap();
    let truth = baseline.answer.expect("fixture query has an answer");

    let plan = FaultPlan::new(99)
        .with_site("ch::settle_exhaustion", FireRule::Always)
        .with_site("ch::unpack", FireRule::Always);
    let _guard = install(plan);
    for _ in 0..4 {
        let out = engine
            .try_query_with_options(&q, &opts, &budget)
            .expect("CH faults are absorbed by the Dijkstra fallback");
        assert!(matches!(out.completion, Completion::Exact));
        let ans = out.answer.expect("answer survives CH faults");
        assert_eq!(ans.maxdist.to_bits(), truth.maxdist.to_bits());
        assert_eq!(ans.users, truth.users);
        assert_eq!(ans.pois, truth.pois);
    }
    assert_ne!(
        engine.ch_breaker().state(),
        gpssn::core::BreakerState::Closed,
        "CH fail-points never reached the breaker"
    );
}
