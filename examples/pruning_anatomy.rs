//! Anatomy of the GP-SSN pruning pipeline: runs one query with full
//! statistics and again with each pruning family disabled, showing what
//! every rule contributes (the live version of the paper's Figure 7).
//!
//! ```text
//! cargo run --release --example pruning_anatomy
//! ```

use gpssn::core::algorithm::QueryOptions;
use gpssn::core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn::ssn::{synthetic, SyntheticConfig};

fn main() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.05), 21);
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
    let q = GpSsnQuery::with_defaults(17);

    let full = engine.query_with_options(
        &q,
        &QueryOptions {
            collect_stats: true,
            ..Default::default()
        },
    );
    let s = &full.metrics.stats;
    println!("query: {q:?}\n");
    println!("-- pruning anatomy (all rules on) --");
    println!("users:  {} total", s.users_total);
    println!(
        "  index-level pruned : {:>6}  ({:.1}%)",
        s.users_pruned_index,
        100.0 * s.social_index_power()
    );
    println!(
        "  object-level pruned: {:>6}  ({:.1}% of survivors)",
        s.users_pruned_object,
        100.0 * s.social_object_power()
    );
    println!("  candidates         : {:>6}", s.candidate_users);
    println!("pois:   {} total", s.pois_total);
    println!(
        "  index-level pruned : {:>6}  ({:.1}%)",
        s.pois_pruned_index,
        100.0 * s.road_index_power()
    );
    println!(
        "  object-level pruned: {:>6}  ({:.1}% of survivors)",
        s.pois_pruned_object,
        100.0 * s.road_object_power()
    );
    println!("  candidate centers  : {:>6}", s.candidate_pois);
    println!(
        "pairs:  {:.3e} possible, {} refined  (power {:.5}%)",
        s.pairs_total_estimate,
        s.pairs_refined,
        100.0 * s.pair_power()
    );
    println!(
        "\nanswer: {:?}",
        full.answer.as_ref().map(|a| (a.users.clone(), a.maxdist))
    );
    println!(
        "cost:   {:.2?}, {} page accesses",
        full.metrics.cpu, full.metrics.io_pages
    );

    println!("\n-- ablation: disable one rule family at a time --");
    let variants: [(&str, QueryOptions); 4] = [
        (
            "no interest pruning",
            QueryOptions {
                use_interest_pruning: false,
                ..Default::default()
            },
        ),
        (
            "no social-distance pruning",
            QueryOptions {
                use_social_distance_pruning: false,
                ..Default::default()
            },
        ),
        (
            "no matching pruning",
            QueryOptions {
                use_matching_pruning: false,
                ..Default::default()
            },
        ),
        (
            "no delta pruning",
            QueryOptions {
                use_delta_pruning: false,
                ..Default::default()
            },
        ),
    ];
    println!("{:<28} {:>12} {:>8}", "variant", "CPU", "I/O");
    println!(
        "{:<28} {:>12} {:>8}",
        "all rules",
        format!("{:.2?}", full.metrics.cpu),
        full.metrics.io_pages
    );
    for (name, opts) in variants {
        let out = engine.query_with_options(&q, &opts);
        // Same answer regardless of pruning (the rules are safe).
        assert_eq!(
            out.answer.as_ref().map(|a| a.maxdist),
            full.answer.as_ref().map(|a| a.maxdist)
        );
        println!(
            "{:<28} {:>12} {:>8}",
            name,
            format!("{:.2?}", out.metrics.cpu),
            out.metrics.io_pages
        );
    }
}
