//! Quickstart: build a spatial-social network, index it, and answer a
//! group planning query.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpssn::core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn::ssn::{synthetic, DatasetStats, SyntheticConfig};

fn main() {
    // 1. A synthetic spatial-social network (2% of the paper's scale so
    //    the example runs in a couple of seconds).
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.02), 42);
    println!("dataset: {}", DatasetStats::of(&ssn));

    // 2. Build the engine: pivot selection + the I_R / I_S indexes.
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
    println!(
        "indexes: I_R {} pages, I_S {} pages",
        engine.road_index().num_pages(),
        engine.social_index().num_pages()
    );

    // 3. Ask: a group of 4 friends with common interests (γ >= 0.3), POIs
    //    matching everyone (θ >= 0.4) within a radius-2 road ball,
    //    minimizing the farthest home-to-POI drive.
    let query = GpSsnQuery {
        user: 11,
        tau: 4,
        gamma: 0.3,
        theta: 0.4,
        radius: 2.0,
    };
    let outcome = engine.query(&query);

    match &outcome.answer {
        Some(ans) => {
            println!("\ngroup S  = {:?}", ans.users);
            println!("pois  R  = {:?}", ans.pois);
            println!("maxdist  = {:.3}", ans.maxdist);
            for &u in &ans.users {
                let w = ssn.social().interest(u);
                println!(
                    "  user {u:>4}: interests {:?}",
                    w.weights()
                        .iter()
                        .map(|x| (x * 100.0).round() / 100.0)
                        .collect::<Vec<_>>()
                );
            }
        }
        None => println!("\nno feasible group/POI pair for these thresholds"),
    }
    println!(
        "\nmetrics: {:.2?} CPU, {} page accesses",
        outcome.metrics.cpu, outcome.metrics.io_pages
    );
}
