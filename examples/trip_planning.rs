//! Example 1 of the paper: destination planning for a group of friends.
//!
//! A hand-built downtown: a 5×5 grid of streets, themed POI districts
//! (restaurants west, shopping center, cafés east), and a small social
//! network of friends with Table-1-style interest profiles. Alice asks
//! for two friends to join her on a POI tour close to everyone's home.
//!
//! ```text
//! cargo run --release --example trip_planning
//! ```

use gpssn::core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn::index::SocialIndexConfig;
use gpssn::road::{NetworkPoint, Poi, PoiSet, RoadNetwork};
use gpssn::social::{InterestVector, SocialNetwork};
use gpssn::spatial::Point;
use gpssn::ssn::SpatialSocialNetwork;

const RESTAURANT: u32 = 0;
const MALL: u32 = 1;
const CAFE: u32 = 2;

fn main() {
    let ssn = build_downtown();
    let names = ["Alice", "Bob", "Carol", "Dave", "Erin", "Frank"];

    let cfg = EngineConfig {
        num_road_pivots: 3,
        num_social_pivots: 2,
        social_index: SocialIndexConfig {
            leaf_size: 4,
            fanout: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let engine = GpSsnEngine::build(&ssn, cfg);

    // Alice (user 0) wants two friends with common interests and a set of
    // spatially close POIs matching everyone's taste.
    let query = GpSsnQuery {
        user: 0,
        tau: 3,
        gamma: 0.25,
        theta: 0.4,
        radius: 2.0,
    };
    let outcome = engine.query(&query);

    println!("Alice's group planning query: τ=3, γ=0.25, θ=0.4, r=2\n");
    match &outcome.answer {
        Some(ans) => {
            println!("Recommended group:");
            for &u in &ans.users {
                println!("  - {}", names[u as usize]);
            }
            println!("\nRecommended POI tour (pairwise within 2r on the road network):");
            for &o in &ans.pois {
                let poi = ssn.pois().get(o);
                let loc = ssn.pois().location(o);
                println!(
                    "  - {} at ({:.1}, {:.1})",
                    describe(&poi.keywords),
                    loc.x,
                    loc.y
                );
            }
            println!("\nWorst home-to-POI drive: {:.2} road units", ans.maxdist);
            for &u in &ans.users {
                let worst = ans
                    .pois
                    .iter()
                    .map(|&o| ssn.user_poi_distance(u, o))
                    .fold(0.0f64, f64::max);
                println!("  {}'s farthest stop: {:.2}", names[u as usize], worst);
            }
        }
        None => println!("No group satisfies the constraints — try relaxing γ or θ."),
    }
}

fn describe(keywords: &[u32]) -> String {
    let label = |k: &u32| match *k {
        RESTAURANT => "restaurant",
        MALL => "shopping mall",
        CAFE => "cafe",
        _ => "poi",
    };
    keywords.iter().map(label).collect::<Vec<_>>().join("+")
}

/// A 5×5 street grid with themed districts and six friends.
fn build_downtown() -> SpatialSocialNetwork {
    let n = 5usize;
    let mut locs = Vec::new();
    let mut edges = Vec::new();
    for y in 0..n {
        for x in 0..n {
            locs.push(Point::new(x as f64, y as f64));
            let id = (y * n + x) as u32;
            if x + 1 < n {
                edges.push((id, id + 1));
            }
            if y + 1 < n {
                edges.push((id, id + n as u32));
            }
        }
    }
    let road = RoadNetwork::from_euclidean_edges(locs, &edges);

    // Horizontal street edges on row y start at edge index… rather than
    // deriving indices, place POIs by scanning edges for the segment we
    // want (midpoint coordinates).
    let poi_at = |road: &RoadNetwork, x: f64, y: f64, keywords: Vec<u32>| -> Poi {
        // Find the edge whose midpoint is closest to (x, y).
        let mut best = (f64::INFINITY, 0u32);
        for e in 0..road.num_edges() as u32 {
            let (u, v, _) = road.edge(e);
            let mid = road.location(u).lerp(&road.location(v), 0.5);
            let d = mid.distance_sq(&Point::new(x, y));
            if d < best.0 {
                best = (d, e);
            }
        }
        let e = best.1;
        let (u, _, len) = road.edge(e);
        let from = road.location(u);
        let along = Point::new(x, y).distance(&from).min(len);
        Poi::new(NetworkPoint::new(road, e, along), keywords)
    };

    let pois = vec![
        poi_at(&road, 0.5, 1.0, vec![RESTAURANT]), // west: food row
        poi_at(&road, 0.5, 2.0, vec![RESTAURANT, CAFE]), // bistro
        poi_at(&road, 2.0, 2.5, vec![MALL]),       // central mall
        poi_at(&road, 2.5, 2.0, vec![MALL, CAFE]), // mall food court
        poi_at(&road, 4.0, 1.5, vec![CAFE]),       // east: café strip
        poi_at(&road, 3.5, 4.0, vec![RESTAURANT]), // north-east diner
    ];
    let pois = PoiSet::new(&road, pois);

    // Table-1-flavoured interest profiles, L1-normalized.
    let iv = |w: [f64; 3]| InterestVector::new(w.to_vec()).as_distribution();
    let interests = vec![
        iv([0.7, 0.3, 0.7]), // Alice: food + cafés
        iv([0.2, 0.9, 0.3]), // Bob: malls
        iv([0.4, 0.8, 0.8]), // Carol: malls + cafés
        iv([0.9, 0.7, 0.7]), // Dave: everything
        iv([0.1, 0.8, 0.5]), // Erin: malls + cafés
        iv([0.8, 0.1, 0.9]), // Frank: food + cafés
    ];
    let friendships = [
        (0, 1),
        (0, 3),
        (0, 5),
        (1, 2),
        (2, 3),
        (1, 4),
        (2, 4),
        (3, 5),
    ];
    let social = SocialNetwork::new(interests, &friendships);

    // Homes: Alice west, Bob/Carol central, Dave east, Erin north, Frank
    // south-west.
    let home = |road: &RoadNetwork, v: u32| NetworkPoint::at_vertex(road, v);
    let homes = vec![
        home(&road, 5),  // (0,1)
        home(&road, 12), // (2,2)
        home(&road, 13), // (3,2)
        home(&road, 9),  // (4,1)
        home(&road, 22), // (2,4)
        home(&road, 1),  // (1,0)
    ];
    SpatialSocialNetwork::new(road, pois, social, homes)
}
