//! Data-driven tuning + parallel batch answering: the operational loop a
//! service built on GP-SSN would run.
//!
//! 1. tune `γ`/`θ`/`r` from the data distributions and a simulated trip
//!    history (paper Section 2.2's tuning discussion);
//! 2. answer a batch of queries for many users in parallel;
//! 3. fall back to the sampled approximate mode for latency-bound users
//!    and show the quality gap.
//!
//! ```text
//! cargo run --release --example tuned_batch
//! ```

use gpssn::core::{suggest_parameters, EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn::ssn::{synthetic, SyntheticConfig};

fn main() {
    let ssn = synthetic(&SyntheticConfig::uni().scaled(0.04), 3);
    let engine = GpSsnEngine::build(
        &ssn,
        EngineConfig {
            page_cache_capacity: Some(256),
            ..Default::default()
        },
    );

    // Simulated trip history: nearby POI pairs users visited together.
    let trips: Vec<Vec<u32>> = (0..40u32)
        .map(|i| {
            let a = (i * 13) % ssn.pois().len() as u32;
            let near = ssn
                .pois()
                .network_knn(ssn.road(), &ssn.pois().get(a).position, 3);
            near.into_iter().map(|(o, _)| o).collect()
        })
        .collect();
    let tuned = suggest_parameters(&ssn, &trips, 0.7, 512, 11);
    println!(
        "tuned parameters: gamma={:.3} theta={:.3} r={:.3} (from {} samples)",
        tuned.gamma, tuned.theta, tuned.radius, tuned.samples
    );
    // Clamp r into the index's supported range.
    let radius = tuned.radius.clamp(0.5, 4.0);

    // A batch of queries across users, answered on 4 threads.
    let queries: Vec<GpSsnQuery> = (0..24u32)
        .filter(|&u| ssn.social().graph().degree(u) >= 2)
        .map(|u| GpSsnQuery {
            radius,
            ..tuned.query(u, 4)
        })
        .collect();
    let t0 = std::time::Instant::now();
    let outcomes = engine.query_batch(&queries, 4);
    let wall = t0.elapsed();
    let answered = outcomes.iter().filter(|o| o.answer.is_some()).count();
    let total_io: u64 = outcomes.iter().map(|o| o.metrics.io_pages).sum();
    println!(
        "batch: {}/{} answered in {wall:.2?} on 4 threads ({} physical page reads total)",
        answered,
        queries.len(),
        total_io
    );

    // Approximate mode comparison on the first answered query.
    if let Some((q, exact)) = queries
        .iter()
        .zip(outcomes.iter())
        .find_map(|(q, o)| o.answer.as_ref().map(|a| (q, a.clone())))
    {
        let approx = engine.query_approximate(q, 48, 1);
        match approx.answer {
            Some(a) => println!(
                "sampling vs exact for user {}: approx maxdist {:.3} vs exact {:.3} \
                 ({}x samples)",
                q.user, a.maxdist, exact.maxdist, 48
            ),
            None => println!(
                "sampling missed the answer for user {} (exact maxdist {:.3})",
                q.user, exact.maxdist
            ),
        }
    }
}
