//! Example 2 of the paper: online advertising and marketing (Groupon-style
//! group-buying deals).
//!
//! A sales manager picks target customers; for each one, a GP-SSN query
//! finds a group of `τ` like-minded friends plus a bundle of spatially
//! close merchants (POIs) matching the whole group — exactly the coupon
//! recommendation of the paper's Example 2.
//!
//! ```text
//! cargo run --release --example group_marketing
//! ```

use gpssn::core::{EngineConfig, GpSsnEngine, GpSsnQuery};
use gpssn::ssn::{synthetic, SyntheticConfig};

const CATEGORIES: [&str; 5] = [
    "dining",
    "fashion",
    "electronics",
    "wellness",
    "entertainment",
];

fn main() {
    // A mid-sized city: ~1.5K customers, ~500 merchants.
    let ssn = synthetic(&SyntheticConfig::zipf().scaled(0.05), 7);
    let engine = GpSsnEngine::build(&ssn, EngineConfig::default());

    // The campaign: 5-person group-buy deals, strong interest affinity,
    // merchants must cover at least half of each member's interest mass.
    let campaign = GpSsnQuery {
        user: 0,
        tau: 5,
        gamma: 0.3,
        theta: 0.5,
        radius: 2.5,
    };

    println!("Group-buy campaign: deals need {} buyers\n", campaign.tau);
    let targets: Vec<u32> = (0..ssn.social().num_users() as u32)
        .filter(|&u| ssn.social().graph().degree(u) >= 4)
        .take(8)
        .collect();

    let mut sent = 0;
    for &customer in &targets {
        let q = GpSsnQuery {
            user: customer,
            ..campaign.clone()
        };
        let outcome = engine.query(&q);
        match outcome.answer {
            Some(ans) => {
                sent += 1;
                let dominant = dominant_category(&ssn, customer);
                println!(
                    "coupon #{sent}: customer {customer} ({dominant}) + {} friends -> \
                     {} merchants, worst trip {:.2} ({} page accesses, {:.1?})",
                    ans.users.len() - 1,
                    ans.pois.len(),
                    ans.maxdist,
                    outcome.metrics.io_pages,
                    outcome.metrics.cpu,
                );
                let cats: Vec<&str> = ans
                    .pois
                    .iter()
                    .flat_map(|&o| ssn.pois().get(o).keywords.iter())
                    .map(|&k| CATEGORIES[k as usize % CATEGORIES.len()])
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect();
                println!("            merchant categories: {}", cats.join(", "));
            }
            None => {
                println!(
                    "customer {customer}: no qualifying group — not targeted \
                     (saves a wasted coupon)"
                );
            }
        }
    }
    println!(
        "\n{sent}/{} customers received a group-buy recommendation",
        targets.len()
    );
}

fn dominant_category(ssn: &gpssn::SpatialSocialNetwork, u: u32) -> &'static str {
    let w = ssn.social().interest(u);
    let mut best = 0;
    for f in 1..w.dim() {
        if w.weight(f) > w.weight(best) {
            best = f;
        }
    }
    CATEGORIES[best % CATEGORIES.len()]
}
