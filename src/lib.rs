//! # gpssn — Group Planning Queries over Spatial-Social Networks
//!
//! Facade crate re-exporting the full GP-SSN stack:
//!
//! * [`graph`] — graph substrate (CSR graphs, Dijkstra, BFS, partitioning).
//! * [`spatial`] — geometry and the R\*-tree.
//! * [`road`] — spatial road networks `G_r` with POIs.
//! * [`social`] — social networks `G_s` with interest vectors.
//! * [`ssn`] — integrated spatial-social networks `G_rs` and datasets.
//! * [`index`] — the `I_R` / `I_S` indexes and pivot selection.
//! * [`core`] — pruning strategies, the GP-SSN query answering algorithm,
//!   and the baseline competitor.
//!
//! See `examples/quickstart.rs` for a three-minute tour.
//!
//! ```no_run
//! use gpssn::core::{EngineConfig, GpSsnEngine, GpSsnQuery};
//! use gpssn::ssn::{synthetic, SyntheticConfig};
//!
//! let ssn = synthetic(&SyntheticConfig::uni().scaled(0.02), 42);
//! let engine = GpSsnEngine::build(&ssn, EngineConfig::default());
//! let outcome = engine.query(&GpSsnQuery::with_defaults(11));
//! if let Some(ans) = outcome.answer {
//!     println!("group {:?} visits {:?} (maxdist {:.2})", ans.users, ans.pois, ans.maxdist);
//! }
//! ```

pub use gpssn_core as core;
pub use gpssn_failpoint as failpoint;
pub use gpssn_graph as graph;
pub use gpssn_index as index;
pub use gpssn_obs as obs;
pub use gpssn_road as road;
pub use gpssn_social as social;
pub use gpssn_spatial as spatial;
pub use gpssn_ssn as ssn;

pub use gpssn_core::{GpSsnAnswer, GpSsnEngine, GpSsnQuery};
pub use gpssn_ssn::SpatialSocialNetwork;
