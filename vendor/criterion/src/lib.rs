//! A self-contained drop-in subset of the `criterion` API.
//!
//! This repository must build in fully offline environments, so the
//! benchmark surface it uses is vendored: [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], [`black_box`],
//! [`BenchmarkId`], benchmark groups with `warm_up_time` /
//! `measurement_time` / `sample_size`, and `Bencher::iter`.
//!
//! Unlike upstream it performs no statistical analysis or HTML reporting:
//! each benchmark warms up, then takes `sample_size` timed samples and
//! prints min / mean / max per-iteration wall-clock times. That is enough
//! to compare configurations and record BENCH entries.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (the group name provides the prefix).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Measurement configuration and entry point, mirroring
/// `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Parse the conventional harness CLI shape leniently: a bare
        // positional argument is a substring filter; flags criterion
        // would accept (--bench, --save-baseline X, ...) are ignored.
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration (split across samples).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            filter: self.filter.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let warm = self.warm_up;
        let meas = self.measurement;
        let n = self.sample_size;
        let filter = self.filter.clone();
        run_one(&id.into().id, warm, meas, n, filter.as_deref(), f);
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(
            &full,
            self.warm_up,
            self.measurement,
            self.sample_size,
            self.filter.as_deref(),
            f,
        );
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(
            &full,
            self.warm_up,
            self.measurement,
            self.sample_size,
            self.filter.as_deref(),
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    /// Per-iteration wall-clock estimate, set by `iter`.
    sample_ns: Vec<f64>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f` repeatedly: warm-up, then `sample_size` samples each
    /// timing a batch sized to fill `measurement / sample_size`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            black_box(f());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        self.sample_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.sample_ns
                .push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<&str>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        sample_ns: Vec::new(),
        warm_up,
        measurement,
        sample_size,
    };
    f(&mut b);
    if b.sample_ns.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = b.sample_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.sample_ns.iter().cloned().fold(0.0f64, f64::max);
    let mean = b.sample_ns.iter().sum::<f64>() / b.sample_ns.len() as f64;
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3)
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = quick();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_bench_with_input_runs() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.sample_size(3);
        let mut hits = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| {
                hits += x;
                black_box(hits)
            })
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
