//! A self-contained drop-in subset of the `rand` 0.8 API.
//!
//! This repository must build in fully offline environments, so the
//! handful of `rand` features it actually uses are vendored here instead
//! of pulled from crates.io: [`rngs::StdRng`] (an xoshiro256** PRNG),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen`,
//! `gen_range`, and `gen_bool`. Streams are deterministic per seed (a
//! property every test and experiment in this workspace relies on) but
//! intentionally *not* bit-compatible with upstream `rand` — nothing in
//! the workspace depends on upstream streams.

/// Low-level source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]` (mirrors upstream).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable PRNGs, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a standard distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Treat as half-open with an occasional exact endpoint;
                // indistinguishable for continuous use.
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators (only `StdRng` is provided).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** seeded via SplitMix64.
    /// Fast, high-quality for simulation purposes, deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let r: &mut StdRng = &mut rng;
        assert!(draw(r) < 10);
    }
}
