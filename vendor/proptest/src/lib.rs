//! A self-contained drop-in subset of the `proptest` API.
//!
//! This repository must build in fully offline environments, so the
//! features it actually uses are vendored: the [`proptest!`] macro,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, range and tuple
//! strategies, [`collection::vec`], `prop_map`, and
//! [`prelude::ProptestConfig::with_cases`].
//!
//! Semantics differences vs. upstream (acceptable for this workspace):
//! no shrinking — a failing case panics with the case number, and cases
//! are deterministic per (module, test name, case index), so a failure
//! reproduces exactly on re-run.

pub mod strategy {
    //! Value-generation strategies (a sampling-only `Strategy` trait).

    use rand::{rngs::StdRng, Rng};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.sample(rng),)*)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};
    use std::ops::Range;

    /// Number-of-elements specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-case RNG derivation (deterministic, collision-resistant enough
    //! for test generation).

    use rand::{rngs::StdRng, SeedableRng};
    use std::hash::{Hash, Hasher};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps full-workspace runs fast
            // while exercising plenty of the input space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG for one test case.
    pub fn case_rng(module: &str, test: &str, case: u32) -> StdRng {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        (module, test, case).hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

pub mod prelude {
    //! The `use proptest::prelude::*` surface.

    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't meet a precondition.
/// Expands to `continue` targeting the per-case loop generated by
/// [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::case_rng(module_path!(), stringify!($name), __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -2.0f64..2.0) {
            prop_assert!(x < 10);
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(0u32..5, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_map(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::test_runner::case_rng("m", "t", 3);
        let mut b = crate::test_runner::case_rng("m", "t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::case_rng("m", "t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
